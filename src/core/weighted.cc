#include "core/weighted.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"
#include "util/status.h"

namespace setdisc {

/// Sequence fingerprint of a prior vector (bit patterns, so -0.0 != 0.0 is
/// the only surprise — and those never both appear as set weights).
uint64_t FingerprintWeights(uint64_t h, const std::vector<double>& weights) {
  for (double w : weights) {
    uint64_t bits;
    std::memcpy(&bits, &w, sizeof bits);
    h = FingerprintAppend(h, bits);
  }
  return h;
}

uint64_t WeightedMostEvenSelector::DecisionFingerprint() const {
  return FingerprintWeights(FingerprintString(name()), *weights_);
}

EntityId WeightedMostEvenSelector::Select(const SubCollection& sub,
                                          const EntityExclusion* excluded) {
  if (sub.size() < 2) return kNoEntity;
  counter_.CountInformative(sub, &counts_, excluded);
  if (counts_.empty()) return kNoEntity;

  // One dense pass accumulates every entity's contained mass. For a fixed
  // entity the adds happen in ascending member order — the same sequence the
  // per-candidate probe loop produced — so w_in is bit-identical and the
  // epsilon tie-break below decides exactly as before.
  obs::PhaseTimer order_timer(obs::Phase::kOrder);
  const SetCollection& collection = sub.collection();
  if (weight_stamp_.size() < collection.universe_size()) {
    weight_stamp_.resize(collection.universe_size(), 0);
    weight_acc_.resize(collection.universe_size(), 0.0);
  }
  if (++weight_epoch_ == 0) {  // stamp wrap-around: invalidate everything
    std::fill(weight_stamp_.begin(), weight_stamp_.end(), 0u);
    weight_epoch_ = 1;
  }
  const uint32_t epoch = weight_epoch_;
  double total = 0.0;
  for (SetId s : sub.ids()) {
    const double w = s < weights_->size() ? (*weights_)[s] : 0.0;
    total += w;
    for (EntityId e : collection.set(s)) {
      if (weight_stamp_[e] != epoch) {
        weight_stamp_[e] = epoch;
        weight_acc_[e] = w;  // == 0.0 + w: same double as the old loop's start
      } else {
        weight_acc_[e] += w;
      }
    }
  }

  EntityId best = kNoEntity;
  double best_gap = 0.0;
  for (const EntityCount& ec : counts_) {
    const double w_in =
        weight_stamp_[ec.entity] == epoch ? weight_acc_[ec.entity] : 0.0;
    double gap = std::fabs(2.0 * w_in - total);
    if (best == kNoEntity || gap < best_gap - 1e-12) {
      best = ec.entity;
      best_gap = gap;
    }
  }
  return best;
}

double WeightedEntropyLowerBound(const std::vector<double>& weights,
                                 const std::vector<SetId>& ids) {
  double total = 0.0;
  for (SetId s : ids) total += s < weights.size() ? weights[s] : 0.0;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (SetId s : ids) {
    double w = s < weights.size() ? weights[s] : 0.0;
    if (w <= 0.0) continue;
    double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double ExpectedQuestions(const DecisionTree& tree,
                         const std::vector<double>& weights) {
  std::unordered_map<SetId, double> by_set;
  for (SetId s = 0; s < weights.size(); ++s) by_set[s] = weights[s];
  return tree.WeightedAvgDepth(by_set);
}

}  // namespace setdisc
