#include "core/weighted.h"

#include <cmath>
#include <cstring>

#include "util/status.h"

namespace setdisc {

/// Sequence fingerprint of a prior vector (bit patterns, so -0.0 != 0.0 is
/// the only surprise — and those never both appear as set weights).
uint64_t FingerprintWeights(uint64_t h, const std::vector<double>& weights) {
  for (double w : weights) {
    uint64_t bits;
    std::memcpy(&bits, &w, sizeof bits);
    h = FingerprintAppend(h, bits);
  }
  return h;
}

uint64_t WeightedMostEvenSelector::DecisionFingerprint() const {
  return FingerprintWeights(FingerprintString(name()), *weights_);
}

EntityId WeightedMostEvenSelector::Select(const SubCollection& sub,
                                          const EntityExclusion* excluded) {
  if (sub.size() < 2) return kNoEntity;
  counter_.CountInformative(sub, &counts_, excluded);
  if (counts_.empty()) return kNoEntity;

  double total = 0.0;
  for (SetId s : sub.ids()) {
    total += s < weights_->size() ? (*weights_)[s] : 0.0;
  }

  EntityId best = kNoEntity;
  double best_gap = 0.0;
  const SetCollection& collection = sub.collection();
  for (const EntityCount& ec : counts_) {
    double w_in = 0.0;
    for (SetId s : sub.ids()) {
      if (collection.Contains(s, ec.entity)) {
        w_in += s < weights_->size() ? (*weights_)[s] : 0.0;
      }
    }
    double gap = std::fabs(2.0 * w_in - total);
    if (best == kNoEntity || gap < best_gap - 1e-12) {
      best = ec.entity;
      best_gap = gap;
    }
  }
  return best;
}

double WeightedEntropyLowerBound(const std::vector<double>& weights,
                                 const std::vector<SetId>& ids) {
  double total = 0.0;
  for (SetId s : ids) total += s < weights.size() ? weights[s] : 0.0;
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (SetId s : ids) {
    double w = s < weights.size() ? weights[s] : 0.0;
    if (w <= 0.0) continue;
    double p = w / total;
    h -= p * std::log2(p);
  }
  return h;
}

double ExpectedQuestions(const DecisionTree& tree,
                         const std::vector<double>& weights) {
  std::unordered_map<SetId, double> by_set;
  for (SetId s = 0; s < weights.size(); ++s) by_set[s] = weights[s];
  return tree.WeightedAvgDepth(by_set);
}

}  // namespace setdisc
