#pragma once

/// \file multi_choice.h
/// §6 "Multiple-choice examples" extension: each interaction shows a *batch*
/// of example entities and the user marks which belong to the target set.
/// One round partitions the candidates into up to 2^b classes, so the number
/// of rounds (screens shown to the user) drops well below the number of
/// single-entity questions.
///
/// Batch selection follows the paper's suggested light-weight alternative to
/// the multi-armed-bandit formulation: a greedy that picks each next entity
/// to minimize the number of indistinguishable pairs of the refined
/// partition (the Eq. 10 objective generalized to multi-way partitions).

#include <span>
#include <vector>

#include "collection/inverted_index.h"
#include "collection/set_collection.h"
#include "collection/sub_collection.h"
#include "core/discovery.h"

namespace setdisc {

struct MultiChoiceOptions {
  int batch_size = 3;      ///< entities shown per round (b)
  int candidate_pool = 64; ///< top-most-even entities scored by the greedy
  int max_rounds = -1;     ///< halt condition (<0 = unlimited)
};

struct MultiChoiceResult {
  std::vector<SetId> candidates;
  int rounds = 0;          ///< interactions (screens) with the user
  int entities_shown = 0;  ///< total example entities displayed
  bool found() const { return candidates.size() == 1; }
  SetId discovered() const {
    return candidates.size() == 1 ? candidates[0] : kNoSet;
  }
};

/// Greedily selects up to `options.batch_size` informative entities for the
/// next round over `sub`. Returns fewer when the collection distinguishes
/// with fewer.
std::vector<EntityId> SelectBatch(const SubCollection& sub,
                                  const MultiChoiceOptions& options,
                                  EntityCounter& counter);

/// Runs the multiple-choice discovery loop against an oracle (each batch
/// entity is answered individually; a batch counts as one round).
MultiChoiceResult DiscoverMultiChoice(const SetCollection& collection,
                                      const InvertedIndex& index,
                                      std::span<const EntityId> initial,
                                      Oracle& oracle,
                                      const MultiChoiceOptions& options = {});

}  // namespace setdisc
