#pragma once

/// \file discovery_session.h
/// Algorithm 2 as a resumable state machine.
///
/// The library's original `Discover()` is a blocking loop: it calls the
/// Oracle inline and holds its thread until the session ends. A serving
/// engine needs the inverse shape — the *caller* owns the conversation and
/// the engine exposes one step at a time:
///
///   DiscoverySession s(collection, index, initial, selector, options);
///   while (!s.done()) {
///     switch (s.state()) {
///       case SessionState::kAwaitingAnswer:
///         s.SubmitAnswer(AnswerFromUser(s.NextQuestion()));
///         break;
///       case SessionState::kAwaitingVerify:
///         s.Verify(UserConfirms(s.PendingVerify()));
///         break;
///       default: break;
///     }
///   }
///   DiscoveryResult r = s.TakeResult();
///
/// The state machine preserves the §6 semantics exactly — "don't know"
/// exclusion with re-selection, and verification/backtracking with answer
/// flips — and `Discover()` is now a thin wrapper that drives a session
/// against an Oracle, so the two cannot diverge.
///
/// One state machine, two engines. The Algorithm-2+§6 logic is implemented
/// once, as BasicDiscoverySession<Engine>; the Engine parameter supplies the
/// candidate representation and its primitive moves:
///
///   * UnshardedEngine — SubCollection candidates over one SetCollection +
///     InvertedIndex (the original DiscoverySession);
///   * ShardedEngine   — ShardedSubCollection candidates over a
///     ShardedCollection, with seeding, counting, and partition-on-answer
///     running per shard (collection/sharded_collection.h).
///
/// Because both instantiations share every line of control flow and all
/// decisions are taken on merged counts, sharded and unsharded sessions
/// produce byte-identical transcripts (tests/sharded_parity_test.cc).
/// Callers that don't care which engine runs — SessionManager, the network
/// server — step sessions through the type-erased DiscoveryEngine interface.
///
/// A session is single-conversation state: it is NOT thread-safe (neither is
/// the selector it holds). Concurrency lives one layer up, in
/// SessionManager; a sharded session may still fan one step's counting
/// across a pool internally.

#include <atomic>
#include <memory>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "collection/inverted_index.h"
#include "collection/set_collection.h"
#include "collection/sharded_collection.h"
#include "collection/sub_collection.h"
#include "core/discovery.h"
#include "core/selector.h"
#include "core/sharded_selectors.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace setdisc {

/// Where a session currently stands.
enum class SessionState {
  /// A membership question is pending: read it with NextQuestion(), answer
  /// with SubmitAnswer().
  kAwaitingAnswer,
  /// A single candidate remains and options.verify_and_backtrack is on:
  /// read it with PendingVerify(), resolve with Verify().
  kAwaitingVerify,
  /// The session is over; TakeResult()/result() hold the outcome.
  kFinished,
};

/// Type-erased stepping interface: everything a caller needs to drive one
/// conversation, independent of which engine (unsharded or sharded) runs the
/// candidate state underneath. All ids exposed here — questions, verify
/// sets, result candidates — are global.
class DiscoveryEngine {
 public:
  virtual ~DiscoveryEngine() = default;

  virtual SessionState state() const = 0;
  bool done() const { return state() == SessionState::kFinished; }

  /// The entity of the pending question. Only valid in kAwaitingAnswer
  /// (returns kNoEntity otherwise).
  virtual EntityId NextQuestion() const = 0;

  /// The single remaining candidate awaiting confirmation. Only valid in
  /// kAwaitingVerify (returns kNoSet otherwise).
  virtual SetId PendingVerify() const = 0;

  /// Answers the pending question (state must be kAwaitingAnswer) and
  /// advances: partitions the candidates — or, for kDontKnow under
  /// options.handle_dont_know, excludes the entity and re-selects on the
  /// same candidates (§6) — then picks the next question or finishes.
  virtual void SubmitAnswer(Oracle::Answer answer) = 0;

  /// Resolves the pending verification (state must be kAwaitingVerify).
  /// `confirmed` = true ends the session confirmed; false triggers §6
  /// backtracking: the most recent unflipped answer is flipped and the
  /// session resumes on the alternative branch (or finishes when the answer
  /// tree or the flip budget is exhausted).
  virtual void Verify(bool confirmed) = 0;

  /// Live view of the result so far (questions, transcript, candidates...).
  /// Fully populated once done().
  virtual const DiscoveryResult& result() const = 0;

  /// Moves the result out; the session must be done().
  virtual DiscoveryResult TakeResult() = 0;

  /// Number of candidate sets still standing.
  virtual size_t num_candidates() const = 0;

  virtual const DiscoveryOptions& options() const = 0;

  /// Turns on the per-step TraceEvent journal: the next `capacity` completed
  /// steps (overwrite-oldest past that) are recorded with phase latencies
  /// and serve paths. Steps taken before the call are not traced. Off by
  /// default; default implementation ignores the request.
  virtual void EnableTracing(size_t capacity) { (void)capacity; }

  /// The trace ring, or nullptr when tracing is off. Reading it while
  /// another thread steps the session is a race — callers serialize via
  /// whatever serializes steps (SessionManager's entry mutex).
  virtual const obs::TraceRing* trace() const { return nullptr; }

  /// Load-adaptive degradation: points the session at a live effort level
  /// (service/load_controller.h writes it, SessionManager owns the cell).
  /// Each step re-reads the cell on entry and forwards changes to the
  /// selector's SetEffort, so degradation and recovery take effect on the
  /// very next step of every session without per-session bookkeeping.
  /// nullptr (the default) pins full effort. The cell must outlive the
  /// session. Default implementation ignores the request.
  virtual void SetEffortSource(const std::atomic<int>* source) {
    (void)source;
  }
};

/// Engine over one flat SetCollection: the candidate view is a
/// SubCollection of global ids. A plain struct of borrowed pointers; the
/// collection and index must outlive the session.
struct UnshardedEngine {
  using View = SubCollection;
  using Selector = EntitySelector;

  const SetCollection* collection = nullptr;
  const InvertedIndex* index = nullptr;

  View Initial(std::span<const EntityId> initial) const {
    return View(collection, index->SetsContainingAll(initial));
  }
  std::pair<View, View> Partition(const View& view, EntityId e,
                                  bool derive_fingerprints) const {
    return view.Partition(e, derive_fingerprints);
  }
  void AppendGlobal(const View& view, std::vector<SetId>* out) const {
    out->assign(view.ids().begin(), view.ids().end());
  }
  SetId Front(const View& view) const { return view.front(); }
  View Filter(View view, const std::unordered_set<SetId>& rejected) const;
  size_t NumShards() const { return 1; }
};

/// Engine over a ShardedCollection: the candidate view keeps one
/// SubCollection per shard, and seeding / partition-on-answer run per shard
/// (optionally fanned across `pool`). The sharded collection must outlive
/// the session.
struct ShardedEngine {
  using View = ShardedSubCollection;
  using Selector = ShardedEntitySelector;

  const ShardedCollection* collection = nullptr;
  ThreadPool* pool = nullptr;

  View Initial(std::span<const EntityId> initial) const {
    return collection->SetsContainingAll(initial);
  }
  std::pair<View, View> Partition(const View& view, EntityId e,
                                  bool derive_fingerprints) const {
    return view.Partition(e, derive_fingerprints, pool);
  }
  void AppendGlobal(const View& view, std::vector<SetId>* out) const {
    out->clear();
    view.AppendGlobalIds(out);
  }
  SetId Front(const View& view) const { return view.FrontGlobal(); }
  View Filter(View view, const std::unordered_set<SetId>& rejected) const;
  size_t NumShards() const { return collection->num_shards(); }
};

/// The Algorithm 2 + §6 state machine, written once over an Engine.
template <typename Engine>
class BasicDiscoverySession : public DiscoveryEngine {
 public:
  using View = typename Engine::View;
  using Selector = typename Engine::Selector;

  /// Starts a session: filters candidates to the supersets of `initial`
  /// (Algorithm 2 lines 1-4, per shard under ShardedEngine) and selects the
  /// first question. The engine's referents and the selector must outlive
  /// the session; the selector must not be shared with a concurrently
  /// stepping session.
  BasicDiscoverySession(Engine engine, std::span<const EntityId> initial,
                        Selector& selector, const DiscoveryOptions& options);

  BasicDiscoverySession(BasicDiscoverySession&&) = default;
  BasicDiscoverySession& operator=(BasicDiscoverySession&&) = default;

  SessionState state() const override { return state_; }

  EntityId NextQuestion() const override {
    return state_ == SessionState::kAwaitingAnswer ? pending_entity_
                                                   : kNoEntity;
  }

  SetId PendingVerify() const override {
    return state_ == SessionState::kAwaitingVerify ? pending_set_ : kNoSet;
  }

  void SubmitAnswer(Oracle::Answer answer) override;
  void Verify(bool confirmed) override;

  const DiscoveryResult& result() const override { return result_; }
  DiscoveryResult TakeResult() override;

  size_t num_candidates() const override { return candidates_.size(); }

  const DiscoveryOptions& options() const override { return options_; }

  void EnableTracing(size_t capacity) override;
  const obs::TraceRing* trace() const override { return trace_.get(); }

  void SetEffortSource(const std::atomic<int>* source) override {
    effort_source_ = source;
    ApplyEffort();
  }

 private:
  /// One answered question: the candidate view before it, the entity asked,
  /// and the branch taken. Kept for §6 backtracking.
  struct Frame {
    View before;
    EntityId entity;
    bool answered_yes;
    bool flipped = false;
  };

  /// Runs the narrowing loop (Algorithm 2 lines 5-12) until it needs outside
  /// input: stops in kAwaitingAnswer with a selected question, in
  /// kAwaitingVerify with a single candidate, or in kFinished.
  void Advance();

  /// §6 error recovery after a rejected verification: flip the most recent
  /// unflipped answer and resume, or finish when nothing viable remains.
  void Backtrack();

  void Finish() { state_ = SessionState::kFinished; }

  /// The uninstrumented step bodies; the public SubmitAnswer/Verify wrap
  /// them with the step timer, phase scope, and trace capture when metrics
  /// or tracing are on (and are plain calls when both are off).
  void DoSubmitAnswer(Oracle::Answer answer);
  void DoVerify(bool confirmed);

  /// Records one completed step: the step-latency histogram, the per-phase
  /// histograms, and (when tracing) a TraceEvent.
  void RecordStep(uint8_t kind, EntityId entity, size_t candidates_before,
                  uint64_t total_ns, const obs::PhaseAccum& accum);

  /// Forwards the current effort level to the selector iff it changed since
  /// the last step — at steady level (including the idle 0) this is one
  /// relaxed load and a compare, so the undegraded path stays byte- and
  /// cost-identical to a session with no source.
  void ApplyEffort() {
    if (effort_source_ == nullptr) return;
    const int level = effort_source_->load(std::memory_order_relaxed);
    if (level != applied_effort_) {
      selector_->SetEffort(level);
      applied_effort_ = level;
    }
  }

  Engine engine_;
  Selector* selector_;
  DiscoveryOptions options_;

  SessionState state_ = SessionState::kFinished;
  View candidates_;
  EntityId pending_entity_ = kNoEntity;
  SetId pending_set_ = kNoSet;

  EntityExclusion excluded_;  // §6 "don't know" entities
  bool any_excluded_ = false;
  std::unordered_set<SetId> rejected_;  // sets refuted during verification
  std::vector<Frame> frames_;

  DiscoveryResult result_;

  /// Live degradation level (see SetEffortSource); null pins full effort.
  const std::atomic<int>* effort_source_ = nullptr;
  int applied_effort_ = 0;

  /// Per-session step TraceEvent journal; null unless EnableTracing() ran.
  std::unique_ptr<obs::TraceRing> trace_;
  /// setdisc_step_latency_ns{selector, shards} — resolved once at
  /// construction (null when metrics were disabled then).
  obs::Histogram* step_hist_ = nullptr;
  uint32_t step_index_ = 0;
};

extern template class BasicDiscoverySession<UnshardedEngine>;
extern template class BasicDiscoverySession<ShardedEngine>;

/// One interactive discovery conversation over a flat collection, advanced
/// step by step — the engine `Discover()` and the unsharded SessionManager
/// path drive.
class DiscoverySession : public BasicDiscoverySession<UnshardedEngine> {
 public:
  DiscoverySession(const SetCollection& collection, const InvertedIndex& index,
                   std::span<const EntityId> initial, EntitySelector& selector,
                   const DiscoveryOptions& options = {})
      : BasicDiscoverySession(UnshardedEngine{&collection, &index}, initial,
                              selector, options) {}
};

/// The same conversation over a sharded collection: candidate seeding,
/// counting, and partition-on-answer run per shard (fanned across `pool`
/// when given), transcripts stay byte-identical to DiscoverySession.
class ShardedDiscoverySession : public BasicDiscoverySession<ShardedEngine> {
 public:
  ShardedDiscoverySession(const ShardedCollection& collection,
                          std::span<const EntityId> initial,
                          ShardedEntitySelector& selector,
                          const DiscoveryOptions& options = {},
                          ThreadPool* pool = nullptr)
      : BasicDiscoverySession(ShardedEngine{&collection, pool}, initial,
                              selector, options) {}
};

}  // namespace setdisc
