#pragma once

/// \file discovery_session.h
/// Algorithm 2 as a resumable state machine.
///
/// The library's original `Discover()` is a blocking loop: it calls the
/// Oracle inline and holds its thread until the session ends. A serving
/// engine needs the inverse shape — the *caller* owns the conversation and
/// the engine exposes one step at a time:
///
///   DiscoverySession s(collection, index, initial, selector, options);
///   while (!s.done()) {
///     switch (s.state()) {
///       case SessionState::kAwaitingAnswer:
///         s.SubmitAnswer(AnswerFromUser(s.NextQuestion()));
///         break;
///       case SessionState::kAwaitingVerify:
///         s.Verify(UserConfirms(s.PendingVerify()));
///         break;
///       default: break;
///     }
///   }
///   DiscoveryResult r = s.TakeResult();
///
/// The state machine preserves the §6 semantics exactly — "don't know"
/// exclusion with re-selection, and verification/backtracking with answer
/// flips — and `Discover()` is now a thin wrapper that drives a session
/// against an Oracle, so the two cannot diverge.
///
/// A session is single-conversation state: it is NOT thread-safe (neither is
/// the EntitySelector it holds). Concurrency lives one layer up, in
/// SessionManager.

#include <memory>
#include <span>
#include <unordered_set>
#include <vector>

#include "collection/inverted_index.h"
#include "collection/set_collection.h"
#include "collection/sub_collection.h"
#include "core/discovery.h"
#include "core/selector.h"

namespace setdisc {

/// Where a session currently stands.
enum class SessionState {
  /// A membership question is pending: read it with NextQuestion(), answer
  /// with SubmitAnswer().
  kAwaitingAnswer,
  /// A single candidate remains and options.verify_and_backtrack is on:
  /// read it with PendingVerify(), resolve with Verify().
  kAwaitingVerify,
  /// The session is over; TakeResult()/result() hold the outcome.
  kFinished,
};

/// One interactive discovery conversation, advanced step by step.
class DiscoverySession {
 public:
  /// Starts a session: filters candidates to the supersets of `initial`
  /// (Algorithm 2 lines 1-4) and selects the first question. The session
  /// keeps references to `collection`, `index`, and `selector`; all three
  /// must outlive it. The selector must not be shared with a concurrently
  /// stepping session.
  DiscoverySession(const SetCollection& collection, const InvertedIndex& index,
                   std::span<const EntityId> initial, EntitySelector& selector,
                   const DiscoveryOptions& options = {});

  DiscoverySession(DiscoverySession&&) = default;
  DiscoverySession& operator=(DiscoverySession&&) = default;

  SessionState state() const { return state_; }
  bool done() const { return state_ == SessionState::kFinished; }

  /// The entity of the pending question. Only valid in kAwaitingAnswer
  /// (returns kNoEntity otherwise).
  EntityId NextQuestion() const {
    return state_ == SessionState::kAwaitingAnswer ? pending_entity_
                                                   : kNoEntity;
  }

  /// The single remaining candidate awaiting confirmation. Only valid in
  /// kAwaitingVerify (returns kNoSet otherwise).
  SetId PendingVerify() const {
    return state_ == SessionState::kAwaitingVerify ? pending_set_ : kNoSet;
  }

  /// Answers the pending question (state must be kAwaitingAnswer) and
  /// advances: partitions the candidates — or, for kDontKnow under
  /// options.handle_dont_know, excludes the entity and re-selects on the
  /// same candidates (§6) — then picks the next question or finishes.
  void SubmitAnswer(Oracle::Answer answer);

  /// Resolves the pending verification (state must be kAwaitingVerify).
  /// `confirmed` = true ends the session confirmed; false triggers §6
  /// backtracking: the most recent unflipped answer is flipped and the
  /// session resumes on the alternative branch (or finishes when the answer
  /// tree or the flip budget is exhausted).
  void Verify(bool confirmed);

  /// Live view of the result so far (questions, transcript, candidates...).
  /// Fully populated once done().
  const DiscoveryResult& result() const { return result_; }

  /// Moves the result out; the session must be done().
  DiscoveryResult TakeResult();

  /// Number of candidate sets still standing.
  size_t num_candidates() const { return candidates_.size(); }

  const DiscoveryOptions& options() const { return options_; }

 private:
  /// One answered question: the candidate ids before it, the entity asked,
  /// and the branch taken. Kept for §6 backtracking.
  struct Frame {
    std::vector<SetId> ids_before;
    EntityId entity;
    bool answered_yes;
    bool flipped = false;
  };

  /// Runs the narrowing loop (Algorithm 2 lines 5-12) until it needs outside
  /// input: stops in kAwaitingAnswer with a selected question, in
  /// kAwaitingVerify with a single candidate, or in kFinished.
  void Advance();

  /// §6 error recovery after a rejected verification: flip the most recent
  /// unflipped answer and resume, or finish when nothing viable remains.
  void Backtrack();

  void Finish() { state_ = SessionState::kFinished; }

  const SetCollection* collection_;
  EntitySelector* selector_;
  DiscoveryOptions options_;

  SessionState state_ = SessionState::kFinished;
  SubCollection candidates_;
  EntityId pending_entity_ = kNoEntity;
  SetId pending_set_ = kNoSet;

  EntityExclusion excluded_;  // §6 "don't know" entities
  bool any_excluded_ = false;
  std::unordered_set<SetId> rejected_;  // sets refuted during verification
  std::vector<Frame> frames_;

  DiscoveryResult result_;
};

}  // namespace setdisc
