#include "service/session_manager.h"

#include <algorithm>
#include <random>
#include <thread>
#include <utility>

#include "obs/event_log.h"
#include "util/status.h"

namespace setdisc {

namespace {

uint8_t EffortByte(int level) {
  if (level < 0) return 0;
  if (level > 255) return 255;
  return static_cast<uint8_t>(level);
}

}  // namespace

SessionManager::SessionManager(const SetCollection& collection,
                               const InvertedIndex& index,
                               SessionManagerOptions options)
    : collection_(collection),
      index_(index),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()) {
  effort_level_.store(
      options_.initial_effort_level < 0 ? 0 : options_.initial_effort_level,
      std::memory_order_relaxed);
  if (options_.num_shards > 1) {
    SETDISC_CHECK_MSG(
        options_.sharded_selector_factory != nullptr,
        "SessionManagerOptions.sharded_selector_factory must be set when "
        "num_shards > 1");
    sharded_ = std::make_unique<ShardedCollection>(
        collection_,
        ShardingOptions{options_.num_shards, options_.shard_scheme});
  } else {
    SETDISC_CHECK_MSG(options_.selector_factory != nullptr,
                      "SessionManagerOptions.selector_factory must be set");
  }
  store_ = options_.session_store;
  // Content fingerprint only (not the shard configuration): transcripts are
  // byte-identical across shard counts, so a record spilled under one K
  // legitimately resumes under another.
  store_fp_ = collection_.Fingerprint();
  if (store_ != nullptr) {
    // Never reissue a persisted id: a new session under a recycled id would
    // be resumable as someone else's old conversation.
    next_id_ = std::max(next_id_, store_->max_id() + 1);
  }
  {
    // Tokens are secrets: seed from OS entropy, not a fixed constant.
    std::random_device rd;
    token_rng_ = Rng((uint64_t{rd()} << 32) ^ rd());
  }
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    spilled_counter_ = reg.GetCounter("setdisc_sessions_spilled_total");
    resumed_counter_ = reg.GetCounter("setdisc_sessions_resumed_total");
    rehydrate_failed_counter_ =
        reg.GetCounter("setdisc_sessions_rehydrate_failed_total");
  }
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.background_reap && (options_.session_ttl.count() > 0 ||
                                   options_.release_scratch_after.count() > 0)) {
    std::chrono::milliseconds interval = options_.reap_interval;
    if (interval.count() <= 0) {
      // Derive the tick from whichever timer is driving it (shrink-on-idle
      // can run without a TTL).
      const std::chrono::milliseconds basis =
          options_.session_ttl.count() > 0 ? options_.session_ttl
                                           : options_.release_scratch_after;
      interval = std::clamp(basis / 4, std::chrono::milliseconds(10),
                            std::chrono::milliseconds(1000));
    }
    reaper_ = std::thread(&SessionManager::ReaperLoop, this, interval);
  }
  if (options_.metrics != nullptr) {
    metrics_probe_ = options_.metrics->AddProbe([this](obs::SampleSink& sink) {
      std::lock_guard<std::mutex> lock(registry_mu_);
      sink.Gauge("setdisc_sessions_active",
                 static_cast<int64_t>(sessions_.size()));
      sink.Counter("setdisc_sessions_created_total", num_created_);
      sink.Gauge("setdisc_manager_pool_queue_depth",
                 static_cast<int64_t>(pool_->queue_depth()));
    });
  }
}

SessionManager::~SessionManager() {
  // Deregister the probe first: a concurrent Snapshot() would otherwise call
  // into a half-destroyed manager. Release() blocks until any in-flight
  // invocation drains.
  metrics_probe_.Release();
  if (reaper_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reaper_mu_);
      reaper_stop_ = true;
    }
    reaper_cv_.notify_all();
    reaper_.join();
  }
  // Join the pool before the registry is torn down: queued StepAsync tasks
  // hold session ids, and resolving them needs the registry alive.
  pool_.reset();
}

void SessionManager::ReaperLoop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (!reaper_stop_) {
    reaper_cv_.wait_for(lock, interval);
    if (reaper_stop_) break;
    lock.unlock();
    ReapExpired();
    lock.lock();
  }
}

SessionView SessionManager::MakeView(SessionId id,
                                     const DiscoveryEngine& session,
                                     uint64_t token) {
  SessionView view;
  view.id = id;
  view.state = session.state();
  view.question = session.NextQuestion();
  view.verify_set = session.PendingVerify();
  view.questions_asked = session.result().questions;
  view.token = token;
  if (session.done()) view.result = session.result();
  return view;
}

std::shared_ptr<SessionManager::Entry> SessionManager::NewEntry(
    std::span<const EntityId> initial, int effort, bool enable_trace) {
  auto entry = std::make_shared<Entry>();
  // The initial Select() (inside the session constructors below) runs
  // outside the registry lock: it can be a real scan, and other sessions
  // must keep stepping meanwhile. (With the shared cache it is usually a
  // hash hit instead — the whole point.)
  if (sharded_ != nullptr) {
    std::unique_ptr<ShardedEntitySelector> selector =
        options_.sharded_selector_factory();
    SETDISC_CHECK_MSG(selector != nullptr,
                      "sharded_selector_factory returned nullptr");
    if (options_.selection_cache != nullptr) {
      selector = std::make_unique<ShardedCachingSelector>(
          std::move(selector), options_.selection_cache);
    }
    // The counting fan-out shares the step pool; ParallelFor callers help
    // drain their own items, so pool jobs stepping sessions stay safe.
    selector->set_pool(pool_.get());
    // Pre-apply the requested level so the creation step's first Select()
    // already runs at it (the effort source, attached later by the caller,
    // only covers subsequent steps).
    if (effort != 0) selector->SetEffort(effort);
    entry->sharded_selector = std::move(selector);
    entry->session = std::make_unique<ShardedDiscoverySession>(
        *sharded_, initial, *entry->sharded_selector, options_.discovery,
        pool_.get());
  } else {
    std::unique_ptr<EntitySelector> selector = options_.selector_factory();
    SETDISC_CHECK_MSG(selector != nullptr, "selector_factory returned nullptr");
    if (options_.selection_cache != nullptr) {
      selector = std::make_unique<CachingSelector>(std::move(selector),
                                                   options_.selection_cache);
    }
    if (effort != 0) selector->SetEffort(effort);
    entry->selector = std::move(selector);
    entry->session = std::make_unique<DiscoverySession>(
        collection_, index_, initial, *entry->selector, options_.discovery);
  }
  if (enable_trace) {
    // Attached after the constructor's first Select(), so the creation step
    // itself is not in the ring — documented on Create().
    entry->session->EnableTracing(std::max<size_t>(1, options_.trace_capacity));
  }
  return entry;
}

SessionView SessionManager::Create(std::span<const EntityId> initial,
                                   bool enable_trace,
                                   obs::TraceId journey_trace,
                                   bool issue_token) {
  // An enclosing request context (server pool job) may carry the id when
  // the Create parameter doesn't — either way the session remembers it so
  // the whole conversation shares one trace.
  if (!journey_trace.valid()) {
    if (const obs::JourneyContext* jc = obs::CurrentJourney()) {
      journey_trace = jc->trace;
    }
  }
  const int create_effort = effort_level_.load(std::memory_order_relaxed);
  std::shared_ptr<Entry> entry = NewEntry(initial, create_effort, enable_trace);
  entry->journey_trace = journey_trace;
  // Steps re-read the live level at entry; the cell outlives every session.
  entry->session->SetEffortSource(&effort_level_);

  // Snapshot before publishing: ids are sequential and guessable, so the
  // moment the entry is in the registry another thread may lock entry->mu
  // and step the session; reading it after emplace would race.
  SessionView view = MakeView(kNoSession, *entry->session);
  if (entry->session->done()) {
    // Finished at birth (no matching candidates, or a single one with
    // verification off): the view already carries the final result, so
    // don't spend a registry slot — or evict a live conversation — on a
    // session that will never be stepped.
    std::lock_guard<std::mutex> lock(registry_mu_);
    view.id = next_id_++;
    ++num_created_;
    if (obs::JourneyContext* jc = obs::CurrentJourney()) {
      jc->session_id = view.id;
    }
    return view;
  }
  if (store_ != nullptr) {
    entry->record.collection_fingerprint = store_fp_;
    entry->record.selector.assign(entry->selector != nullptr
                                      ? entry->selector->name()
                                      : entry->sharded_selector->name());
    entry->record.options = options_.discovery;
    entry->record.set_trace_enabled(enable_trace);
    entry->record.create_effort = EffortByte(create_effort);
    entry->record.initial.assign(initial.begin(), initial.end());
  }
  // Held across publication so the store sees the creation record before
  // any concurrent step's update (ids are guessable; a racing step could
  // otherwise journal first and be overwritten by a stale creation Put).
  // Safe ordering: entry->mu -> registry_mu_ is never taken in reverse.
  std::unique_lock<std::mutex> step_lock(entry->mu);
  {
    // With the background reaper on (the default), TTL reaping is NOT done
    // here: it runs on the reaper tick, keeping the Create critical path
    // to the O(1) insert + possible O(1) eviction below. An expired
    // session can linger until the next tick — if capacity fires first,
    // the LRU front (the longest-idle session, i.e. the expired one if any
    // exists) is exactly the victim. Without the reaper thread, Create
    // reaps inline as it always did — some path must collect expired
    // sessions, or an idle manager would grow without bound.
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (!options_.background_reap) ReapExpiredLocked();
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions && !lru_.empty()) {
      // Evict the least recently touched session: the front of the LRU list,
      // in O(1) — no scan. With a store configured this is a *spill*: the
      // record stays on disk and the session is resumable.
      SessionId victim = lru_.front();
      auto vit = sessions_.find(victim);
      SETDISC_CHECK_MSG(vit != sessions_.end(), "LRU list out of sync");
      const bool victim_finished =
          vit->second->finished.load(std::memory_order_relaxed);
      lru_.pop_front();
      sessions_.erase(vit);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kSessionEvicted,
          static_cast<int64_t>(victim),
          static_cast<int64_t>(sessions_.size()));
      if (store_ != nullptr) {
        if (victim_finished) {
          store_->Erase(victim);
        } else {
          if (spilled_counter_ != nullptr) spilled_counter_->Add();
          obs::FlightRecorder::Global().Record(
              obs::FlightEventKind::kSessionSpilled,
              static_cast<int64_t>(victim));
        }
      }
    }
    view.id = next_id_++;
    ++num_created_;
    if (issue_token) {
      do {
        entry->token = token_rng_();
      } while (entry->token == 0);
      view.token = entry->token;
    }
    if (store_ != nullptr) {
      entry->record.id = view.id;
      entry->record.token = entry->token;
    }
    if (obs::JourneyContext* jc = obs::CurrentJourney()) {
      jc->session_id = view.id;
    }
    // Stamp under the registry lock, next to the list append: timestamps
    // taken outside it could land in the list out of order, and the reap /
    // evict paths rely on list order == last_touched order.
    entry->last_touched = clock_->Now();
    entry->lru_it = lru_.insert(lru_.end(), view.id);
    sessions_.emplace(view.id, entry);
  }
  if (store_ != nullptr) store_->Put(entry->record);
  step_lock.unlock();
  return view;
}

std::shared_ptr<SessionManager::Entry> SessionManager::Find(SessionId id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->last_touched = clock_->Now();
  it->second->scratch_released = false;
  // Move to the back of the LRU list; O(1), no allocation.
  lru_.splice(lru_.end(), lru_, it->second->lru_it);
  return it->second;
}

std::shared_ptr<SessionManager::Entry> SessionManager::FindOrRehydrate(
    SessionId id) {
  std::shared_ptr<Entry> entry = Find(id);
  if (entry != nullptr || store_ == nullptr || id == kNoSession) return entry;
  return Rehydrate(id);
}

std::shared_ptr<SessionManager::Entry> SessionManager::Rehydrate(
    SessionId id) {
  SessionRecord rec;
  if (!store_->Get(id, &rec)) return nullptr;
  auto fail = [this](const char* why, SessionId sid) {
    if (rehydrate_failed_counter_ != nullptr) rehydrate_failed_counter_->Add();
    obs::FlightRecorder::Global().Record(obs::FlightEventKind::kSessionError,
                                         static_cast<int64_t>(sid), 0, why);
    return std::shared_ptr<Entry>();
  };
  if (rec.collection_fingerprint != store_fp_) {
    return fail("rehydrate: collection mismatch", id);
  }
  // The record's discovery options must match ours: replay under different
  // §6 semantics would diverge from the original conversation.
  if (rec.options.max_questions != options_.discovery.max_questions ||
      rec.options.handle_dont_know != options_.discovery.handle_dont_know ||
      rec.options.verify_and_backtrack !=
          options_.discovery.verify_and_backtrack ||
      rec.options.max_backtracks != options_.discovery.max_backtracks) {
    return fail("rehydrate: options mismatch", id);
  }
  std::shared_ptr<Entry> entry =
      NewEntry(rec.initial, rec.create_effort, rec.trace_enabled());
  const std::string_view selector_name = entry->selector != nullptr
                                             ? entry->selector->name()
                                             : entry->sharded_selector->name();
  if (selector_name != rec.selector) {
    return fail("rehydrate: selector mismatch", id);
  }
  // Replay the journal with the selector pinned to each event's recorded
  // effort (no effort source yet, so manual SetEffort sticks — see
  // DiscoveryEngine::SetEffortSource). A deterministic selector then
  // reproduces the exact candidate narrowing, exclusions, and transcript.
  int applied = rec.create_effort;
  for (const SessionEvent& ev : rec.events) {
    if (ev.effort != applied) {
      if (entry->selector != nullptr) {
        entry->selector->SetEffort(ev.effort);
      } else {
        entry->sharded_selector->SetEffort(ev.effort);
      }
      applied = ev.effort;
    }
    if (ev.kind == kEventAnswer) {
      if (entry->session->state() != SessionState::kAwaitingAnswer ||
          ev.value > static_cast<uint8_t>(Oracle::Answer::kDontKnow)) {
        return fail("rehydrate: journal does not replay", id);
      }
      entry->session->SubmitAnswer(static_cast<Oracle::Answer>(ev.value));
    } else {
      if (entry->session->state() != SessionState::kAwaitingVerify) {
        return fail("rehydrate: journal does not replay", id);
      }
      entry->session->Verify(ev.value != 0);
    }
  }
  // Rejoin the live effort regime: pin the current level, then attach the
  // source so future controller moves land like on any other session.
  const int live = effort_level_.load(std::memory_order_relaxed);
  if (live != applied) {
    if (entry->selector != nullptr) {
      entry->selector->SetEffort(live);
    } else {
      entry->sharded_selector->SetEffort(live);
    }
  }
  entry->session->SetEffortSource(&effort_level_);
  entry->token = rec.token;
  entry->finished.store(entry->session->done(), std::memory_order_relaxed);
  const size_t replayed = rec.events.size();
  entry->record = std::move(rec);
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = sessions_.find(id);
    if (it != sessions_.end()) {
      // Lost a rehydration race: the winner's entry is live — use it and
      // drop ours (identical by determinism, so nothing is lost).
      it->second->last_touched = clock_->Now();
      lru_.splice(lru_.end(), lru_, it->second->lru_it);
      return it->second;
    }
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions && !lru_.empty()) {
      SessionId victim = lru_.front();
      auto vit = sessions_.find(victim);
      SETDISC_CHECK_MSG(vit != sessions_.end(), "LRU list out of sync");
      const bool victim_finished =
          vit->second->finished.load(std::memory_order_relaxed);
      lru_.pop_front();
      sessions_.erase(vit);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kSessionEvicted,
          static_cast<int64_t>(victim),
          static_cast<int64_t>(sessions_.size()));
      if (victim_finished) {
        store_->Erase(victim);
      } else {
        if (spilled_counter_ != nullptr) spilled_counter_->Add();
        obs::FlightRecorder::Global().Record(
            obs::FlightEventKind::kSessionSpilled,
            static_cast<int64_t>(victim));
      }
    }
    entry->last_touched = clock_->Now();
    entry->lru_it = lru_.insert(lru_.end(), id);
    sessions_.emplace(id, entry);
  }
  if (resumed_counter_ != nullptr) resumed_counter_->Add();
  obs::FlightRecorder::Global().Record(obs::FlightEventKind::kSessionResumed,
                                       static_cast<int64_t>(id),
                                       static_cast<int64_t>(replayed));
  return entry;
}

void SessionManager::JournalStepLocked(SessionId id, Entry& entry,
                                       uint8_t kind, uint8_t value,
                                       uint8_t effort) {
  if (store_ == nullptr) return;
  (void)id;
  entry.record.events.push_back(SessionEvent{kind, value, effort});
  store_->Put(entry.record);
}

SessionStatus SessionManager::Get(SessionId id, SessionView* view,
                                  uint64_t token) {
  auto entry = FindOrRehydrate(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  if (entry->token != 0 && token != entry->token) {
    return SessionStatus::kNotFound;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (view != nullptr) *view = MakeView(id, *entry->session, entry->token);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::SubmitAnswer(SessionId id, Oracle::Answer answer,
                                           SessionView* view, uint64_t token) {
  auto entry = FindOrRehydrate(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  if (entry->token != 0 && token != entry->token) {
    return SessionStatus::kNotFound;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingAnswer) {
    return SessionStatus::kWrongState;
  }
  // Step requests don't carry a trace id on the wire; the enclosing journey
  // context (if any) inherits the one stored at Create so the step's spans
  // land in the conversation's trace.
  if (obs::JourneyContext* jc = obs::CurrentJourney()) {
    jc->session_id = id;
    if (!jc->trace.valid()) jc->trace = entry->journey_trace;
  }
  // The level this step runs at (ApplyEffort re-reads the same cell at step
  // entry), journaled so replay reproduces a degraded step degraded.
  const uint8_t effort =
      EffortByte(effort_level_.load(std::memory_order_relaxed));
  entry->session->SubmitAnswer(answer);
  if (entry->session->done()) {
    entry->finished.store(true, std::memory_order_relaxed);
  }
  JournalStepLocked(id, *entry, kEventAnswer, static_cast<uint8_t>(answer),
                    effort);
  if (view != nullptr) *view = MakeView(id, *entry->session, entry->token);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::Verify(SessionId id, bool confirmed,
                                     SessionView* view, uint64_t token) {
  auto entry = FindOrRehydrate(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  if (entry->token != 0 && token != entry->token) {
    return SessionStatus::kNotFound;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingVerify) {
    return SessionStatus::kWrongState;
  }
  if (obs::JourneyContext* jc = obs::CurrentJourney()) {
    jc->session_id = id;
    if (!jc->trace.valid()) jc->trace = entry->journey_trace;
  }
  const uint8_t effort =
      EffortByte(effort_level_.load(std::memory_order_relaxed));
  entry->session->Verify(confirmed);
  if (entry->session->done()) {
    entry->finished.store(true, std::memory_order_relaxed);
  }
  JournalStepLocked(id, *entry, kEventVerify, confirmed ? 1 : 0, effort);
  if (view != nullptr) *view = MakeView(id, *entry->session, entry->token);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::GetTrace(SessionId id,
                                       std::vector<obs::TraceEvent>* out,
                                       uint64_t token) {
  auto entry = FindOrRehydrate(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  if (entry->token != 0 && token != entry->token) {
    return SessionStatus::kNotFound;
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  const obs::TraceRing* ring = entry->session->trace();
  if (ring == nullptr) return SessionStatus::kWrongState;
  if (out != nullptr) *out = ring->Events();
  return SessionStatus::kOk;
}

std::future<std::pair<SessionStatus, SessionView>>
SessionManager::SubmitAnswerAsync(SessionId id, Oracle::Answer answer,
                                  uint64_t token) {
  return pool_->Submit([this, id, answer, token] {
    SessionView view;
    SessionStatus status = SubmitAnswer(id, answer, &view, token);
    return std::make_pair(status, view);
  });
}

SessionView SessionManager::Drive(SessionView view, Oracle& oracle) {
  // Bounded by the entity count per narrowing pass and the flip budget per
  // backtrack; the guard only catches protocol bugs.
  int guard = 0;
  while (view.state != SessionState::kFinished && guard++ < 1000000) {
    SessionStatus status;
    if (view.state == SessionState::kAwaitingAnswer) {
      status = SubmitAnswer(view.id, oracle.AskMembership(view.question),
                            &view, view.token);
    } else {
      status = Verify(view.id, oracle.ConfirmTarget(view.verify_set), &view,
                      view.token);
    }
    if (status != SessionStatus::kOk) break;
  }
  return view;
}

SessionStatus SessionManager::Close(SessionId id, uint64_t token) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    // Not in memory — a spilled session is still closable (and closing is
    // the only way its record is reclaimed before reap-of-finished).
    if (store_ != nullptr) {
      SessionRecord rec;
      if (store_->Get(id, &rec) &&
          rec.collection_fingerprint == store_fp_ &&
          (rec.token == 0 || token == rec.token)) {
        store_->Erase(id);
        return SessionStatus::kOk;
      }
    }
    return SessionStatus::kNotFound;
  }
  if (it->second->token != 0 && token != it->second->token) {
    return SessionStatus::kNotFound;
  }
  lru_.erase(it->second->lru_it);
  sessions_.erase(it);
  if (store_ != nullptr) store_->Erase(id);
  return SessionStatus::kOk;
}

size_t SessionManager::ReapExpiredLocked() {
  if (options_.session_ttl.count() <= 0) return 0;
  return ReapOlderThanLocked(clock_->Now() - options_.session_ttl);
}

size_t SessionManager::ReapOlderThanLocked(Clock::time_point cutoff) {
  // Touches keep the LRU list sorted by last_touched, so the expired
  // sessions are exactly a prefix: stop at the first live one.
  size_t reaped = 0;
  while (!lru_.empty()) {
    auto it = sessions_.find(lru_.front());
    SETDISC_CHECK_MSG(it != sessions_.end(), "LRU list out of sync");
    if (it->second->last_touched >= cutoff) break;
    const SessionId id = lru_.front();
    const bool finished = it->second->finished.load(std::memory_order_relaxed);
    sessions_.erase(it);
    lru_.pop_front();
    ++reaped;
    if (store_ != nullptr) {
      if (finished) {
        // A finished conversation has delivered (or abandoned) its result;
        // reaping it reclaims the record too, so the store can't leak.
        store_->Erase(id);
      } else {
        // Spill: the record stays, the conversation resumes on next touch.
        if (spilled_counter_ != nullptr) spilled_counter_->Add();
        obs::FlightRecorder::Global().Record(
            obs::FlightEventKind::kSessionSpilled, static_cast<int64_t>(id));
      }
    }
  }
  return reaped;
}

size_t SessionManager::ReapExpired() {
  size_t reaped;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    reaped = ReapExpiredLocked();
  }
  ReleaseIdleScratch();
  return reaped;
}

size_t SessionManager::ReapIdle(std::chrono::milliseconds threshold) {
  if (threshold.count() <= 0) return 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  return ReapOlderThanLocked(clock_->Now() - threshold);
}

size_t SessionManager::ReleaseIdleScratch() {
  if (options_.release_scratch_after.count() <= 0) return 0;
  const Clock::time_point cutoff =
      clock_->Now() - options_.release_scratch_after;
  // Collect candidates under the registry lock — the idle sessions are a
  // prefix of the LRU list, and already-released ones are skipped — then
  // release outside it: ReleaseMemory needs the entry mutex (it races with
  // steps), and holding the registry lock across per-session work is the
  // contention the background reaper exists to avoid.
  std::vector<std::shared_ptr<Entry>> idle;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (SessionId id : lru_) {
      auto it = sessions_.find(id);
      SETDISC_CHECK_MSG(it != sessions_.end(), "LRU list out of sync");
      if (it->second->last_touched >= cutoff) break;
      if (!it->second->scratch_released) idle.push_back(it->second);
    }
  }
  size_t released = 0;
  for (const std::shared_ptr<Entry>& entry : idle) {
    // try_lock: a session mid-step is not idle after all — skip it; the
    // next tick reconsiders. (Its touch also cleared scratch_released.)
    std::unique_lock<std::mutex> step_lock(entry->mu, std::try_to_lock);
    if (!step_lock.owns_lock()) continue;
    if (entry->selector != nullptr) entry->selector->ReleaseMemory();
    if (entry->sharded_selector != nullptr) {
      entry->sharded_selector->ReleaseMemory();
    }
    step_lock.unlock();
    ++released;
    std::lock_guard<std::mutex> lock(registry_mu_);
    // Re-check idleness: a touch that slipped in since the release already
    // cleared the flag, and its session deserves a fresh idle period.
    if (entry->last_touched < cutoff) entry->scratch_released = true;
  }
  return released;
}

size_t SessionManager::num_active() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return sessions_.size();
}

uint64_t SessionManager::num_created() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return num_created_;
}

}  // namespace setdisc
