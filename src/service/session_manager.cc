#include "service/session_manager.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/event_log.h"
#include "util/status.h"

namespace setdisc {

SessionManager::SessionManager(const SetCollection& collection,
                               const InvertedIndex& index,
                               SessionManagerOptions options)
    : collection_(collection),
      index_(index),
      options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : Clock::Real()) {
  effort_level_.store(
      options_.initial_effort_level < 0 ? 0 : options_.initial_effort_level,
      std::memory_order_relaxed);
  if (options_.num_shards > 1) {
    SETDISC_CHECK_MSG(
        options_.sharded_selector_factory != nullptr,
        "SessionManagerOptions.sharded_selector_factory must be set when "
        "num_shards > 1");
    sharded_ = std::make_unique<ShardedCollection>(
        collection_,
        ShardingOptions{options_.num_shards, options_.shard_scheme});
  } else {
    SETDISC_CHECK_MSG(options_.selector_factory != nullptr,
                      "SessionManagerOptions.selector_factory must be set");
  }
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  if (options_.background_reap && (options_.session_ttl.count() > 0 ||
                                   options_.release_scratch_after.count() > 0)) {
    std::chrono::milliseconds interval = options_.reap_interval;
    if (interval.count() <= 0) {
      // Derive the tick from whichever timer is driving it (shrink-on-idle
      // can run without a TTL).
      const std::chrono::milliseconds basis =
          options_.session_ttl.count() > 0 ? options_.session_ttl
                                           : options_.release_scratch_after;
      interval = std::clamp(basis / 4, std::chrono::milliseconds(10),
                            std::chrono::milliseconds(1000));
    }
    reaper_ = std::thread(&SessionManager::ReaperLoop, this, interval);
  }
  if (options_.metrics != nullptr) {
    metrics_probe_ = options_.metrics->AddProbe([this](obs::SampleSink& sink) {
      std::lock_guard<std::mutex> lock(registry_mu_);
      sink.Gauge("setdisc_sessions_active",
                 static_cast<int64_t>(sessions_.size()));
      sink.Counter("setdisc_sessions_created_total", num_created_);
      sink.Gauge("setdisc_manager_pool_queue_depth",
                 static_cast<int64_t>(pool_->queue_depth()));
    });
  }
}

SessionManager::~SessionManager() {
  // Deregister the probe first: a concurrent Snapshot() would otherwise call
  // into a half-destroyed manager. Release() blocks until any in-flight
  // invocation drains.
  metrics_probe_.Release();
  if (reaper_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reaper_mu_);
      reaper_stop_ = true;
    }
    reaper_cv_.notify_all();
    reaper_.join();
  }
  // Join the pool before the registry is torn down: queued StepAsync tasks
  // hold session ids, and resolving them needs the registry alive.
  pool_.reset();
}

void SessionManager::ReaperLoop(std::chrono::milliseconds interval) {
  std::unique_lock<std::mutex> lock(reaper_mu_);
  while (!reaper_stop_) {
    reaper_cv_.wait_for(lock, interval);
    if (reaper_stop_) break;
    lock.unlock();
    ReapExpired();
    lock.lock();
  }
}

SessionView SessionManager::MakeView(SessionId id,
                                     const DiscoveryEngine& session) {
  SessionView view;
  view.id = id;
  view.state = session.state();
  view.question = session.NextQuestion();
  view.verify_set = session.PendingVerify();
  view.questions_asked = session.result().questions;
  if (session.done()) view.result = session.result();
  return view;
}

SessionView SessionManager::Create(std::span<const EntityId> initial,
                                   bool enable_trace,
                                   obs::TraceId journey_trace) {
  auto entry = std::make_shared<Entry>();
  // An enclosing request context (server pool job) may carry the id when
  // the Create parameter doesn't — either way the session remembers it so
  // the whole conversation shares one trace.
  if (!journey_trace.valid()) {
    if (const obs::JourneyContext* jc = obs::CurrentJourney()) {
      journey_trace = jc->trace;
    }
  }
  entry->journey_trace = journey_trace;
  // The initial Select() (inside the session constructors below) runs
  // outside the registry lock: it can be a real scan, and other sessions
  // must keep stepping meanwhile. (With the shared cache it is usually a
  // hash hit instead — the whole point.)
  if (sharded_ != nullptr) {
    std::unique_ptr<ShardedEntitySelector> selector =
        options_.sharded_selector_factory();
    SETDISC_CHECK_MSG(selector != nullptr,
                      "sharded_selector_factory returned nullptr");
    if (options_.selection_cache != nullptr) {
      selector = std::make_unique<ShardedCachingSelector>(
          std::move(selector), options_.selection_cache);
    }
    // The counting fan-out shares the step pool; ParallelFor callers help
    // drain their own items, so pool jobs stepping sessions stay safe.
    selector->set_pool(pool_.get());
    // Pre-apply the current degradation level so the creation step's first
    // Select() already runs at it (SetEffortSource below only covers
    // subsequent steps).
    const int effort = effort_level_.load(std::memory_order_relaxed);
    if (effort != 0) selector->SetEffort(effort);
    entry->sharded_selector = std::move(selector);
    entry->session = std::make_unique<ShardedDiscoverySession>(
        *sharded_, initial, *entry->sharded_selector, options_.discovery,
        pool_.get());
  } else {
    std::unique_ptr<EntitySelector> selector = options_.selector_factory();
    SETDISC_CHECK_MSG(selector != nullptr, "selector_factory returned nullptr");
    if (options_.selection_cache != nullptr) {
      selector = std::make_unique<CachingSelector>(std::move(selector),
                                                   options_.selection_cache);
    }
    const int effort = effort_level_.load(std::memory_order_relaxed);
    if (effort != 0) selector->SetEffort(effort);
    entry->selector = std::move(selector);
    entry->session = std::make_unique<DiscoverySession>(
        collection_, index_, initial, *entry->selector, options_.discovery);
  }
  // Steps re-read the live level at entry; the cell outlives every session.
  entry->session->SetEffortSource(&effort_level_);

  if (enable_trace) {
    // Attached after the constructor's first Select(), so the creation step
    // itself is not in the ring — documented on Create().
    entry->session->EnableTracing(std::max<size_t>(1, options_.trace_capacity));
  }

  // Snapshot before publishing: ids are sequential and guessable, so the
  // moment the entry is in the registry another thread may lock entry->mu
  // and step the session; reading it after emplace would race.
  SessionView view = MakeView(kNoSession, *entry->session);
  if (entry->session->done()) {
    // Finished at birth (no matching candidates, or a single one with
    // verification off): the view already carries the final result, so
    // don't spend a registry slot — or evict a live conversation — on a
    // session that will never be stepped.
    std::lock_guard<std::mutex> lock(registry_mu_);
    view.id = next_id_++;
    ++num_created_;
    if (obs::JourneyContext* jc = obs::CurrentJourney()) {
      jc->session_id = view.id;
    }
    return view;
  }
  {
    // With the background reaper on (the default), TTL reaping is NOT done
    // here: it runs on the reaper tick, keeping the Create critical path
    // to the O(1) insert + possible O(1) eviction below. An expired
    // session can linger until the next tick — if capacity fires first,
    // the LRU front (the longest-idle session, i.e. the expired one if any
    // exists) is exactly the victim. Without the reaper thread, Create
    // reaps inline as it always did — some path must collect expired
    // sessions, or an idle manager would grow without bound.
    std::lock_guard<std::mutex> lock(registry_mu_);
    if (!options_.background_reap) ReapExpiredLocked();
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions && !lru_.empty()) {
      // Evict the least recently touched session: the front of the LRU list,
      // in O(1) — no scan.
      SessionId victim = lru_.front();
      lru_.pop_front();
      sessions_.erase(victim);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kSessionEvicted,
          static_cast<int64_t>(victim),
          static_cast<int64_t>(sessions_.size()));
    }
    view.id = next_id_++;
    ++num_created_;
    if (obs::JourneyContext* jc = obs::CurrentJourney()) {
      jc->session_id = view.id;
    }
    // Stamp under the registry lock, next to the list append: timestamps
    // taken outside it could land in the list out of order, and the reap /
    // evict paths rely on list order == last_touched order.
    entry->last_touched = clock_->Now();
    entry->lru_it = lru_.insert(lru_.end(), view.id);
    sessions_.emplace(view.id, std::move(entry));
  }
  return view;
}

std::shared_ptr<SessionManager::Entry> SessionManager::Find(SessionId id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->last_touched = clock_->Now();
  it->second->scratch_released = false;
  // Move to the back of the LRU list; O(1), no allocation.
  lru_.splice(lru_.end(), lru_, it->second->lru_it);
  return it->second;
}

SessionStatus SessionManager::Get(SessionId id, SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::SubmitAnswer(SessionId id, Oracle::Answer answer,
                                           SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingAnswer) {
    return SessionStatus::kWrongState;
  }
  // Step requests don't carry a trace id on the wire; the enclosing journey
  // context (if any) inherits the one stored at Create so the step's spans
  // land in the conversation's trace.
  if (obs::JourneyContext* jc = obs::CurrentJourney()) {
    jc->session_id = id;
    if (!jc->trace.valid()) jc->trace = entry->journey_trace;
  }
  entry->session->SubmitAnswer(answer);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::Verify(SessionId id, bool confirmed,
                                     SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingVerify) {
    return SessionStatus::kWrongState;
  }
  if (obs::JourneyContext* jc = obs::CurrentJourney()) {
    jc->session_id = id;
    if (!jc->trace.valid()) jc->trace = entry->journey_trace;
  }
  entry->session->Verify(confirmed);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::GetTrace(SessionId id,
                                       std::vector<obs::TraceEvent>* out) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  const obs::TraceRing* ring = entry->session->trace();
  if (ring == nullptr) return SessionStatus::kWrongState;
  if (out != nullptr) *out = ring->Events();
  return SessionStatus::kOk;
}

std::future<std::pair<SessionStatus, SessionView>>
SessionManager::SubmitAnswerAsync(SessionId id, Oracle::Answer answer) {
  return pool_->Submit([this, id, answer] {
    SessionView view;
    SessionStatus status = SubmitAnswer(id, answer, &view);
    return std::make_pair(status, view);
  });
}

SessionView SessionManager::Drive(SessionView view, Oracle& oracle) {
  // Bounded by the entity count per narrowing pass and the flip budget per
  // backtrack; the guard only catches protocol bugs.
  int guard = 0;
  while (view.state != SessionState::kFinished && guard++ < 1000000) {
    SessionStatus status;
    if (view.state == SessionState::kAwaitingAnswer) {
      status = SubmitAnswer(view.id, oracle.AskMembership(view.question),
                            &view);
    } else {
      status = Verify(view.id, oracle.ConfirmTarget(view.verify_set), &view);
    }
    if (status != SessionStatus::kOk) break;
  }
  return view;
}

SessionStatus SessionManager::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return SessionStatus::kNotFound;
  lru_.erase(it->second->lru_it);
  sessions_.erase(it);
  return SessionStatus::kOk;
}

size_t SessionManager::ReapExpiredLocked() {
  if (options_.session_ttl.count() <= 0) return 0;
  return ReapOlderThanLocked(clock_->Now() - options_.session_ttl);
}

size_t SessionManager::ReapOlderThanLocked(Clock::time_point cutoff) {
  // Touches keep the LRU list sorted by last_touched, so the expired
  // sessions are exactly a prefix: stop at the first live one.
  size_t reaped = 0;
  while (!lru_.empty()) {
    auto it = sessions_.find(lru_.front());
    SETDISC_CHECK_MSG(it != sessions_.end(), "LRU list out of sync");
    if (it->second->last_touched >= cutoff) break;
    sessions_.erase(it);
    lru_.pop_front();
    ++reaped;
  }
  return reaped;
}

size_t SessionManager::ReapExpired() {
  size_t reaped;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    reaped = ReapExpiredLocked();
  }
  ReleaseIdleScratch();
  return reaped;
}

size_t SessionManager::ReapIdle(std::chrono::milliseconds threshold) {
  if (threshold.count() <= 0) return 0;
  std::lock_guard<std::mutex> lock(registry_mu_);
  return ReapOlderThanLocked(clock_->Now() - threshold);
}

size_t SessionManager::ReleaseIdleScratch() {
  if (options_.release_scratch_after.count() <= 0) return 0;
  const Clock::time_point cutoff =
      clock_->Now() - options_.release_scratch_after;
  // Collect candidates under the registry lock — the idle sessions are a
  // prefix of the LRU list, and already-released ones are skipped — then
  // release outside it: ReleaseMemory needs the entry mutex (it races with
  // steps), and holding the registry lock across per-session work is the
  // contention the background reaper exists to avoid.
  std::vector<std::shared_ptr<Entry>> idle;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (SessionId id : lru_) {
      auto it = sessions_.find(id);
      SETDISC_CHECK_MSG(it != sessions_.end(), "LRU list out of sync");
      if (it->second->last_touched >= cutoff) break;
      if (!it->second->scratch_released) idle.push_back(it->second);
    }
  }
  size_t released = 0;
  for (const std::shared_ptr<Entry>& entry : idle) {
    // try_lock: a session mid-step is not idle after all — skip it; the
    // next tick reconsiders. (Its touch also cleared scratch_released.)
    std::unique_lock<std::mutex> step_lock(entry->mu, std::try_to_lock);
    if (!step_lock.owns_lock()) continue;
    if (entry->selector != nullptr) entry->selector->ReleaseMemory();
    if (entry->sharded_selector != nullptr) {
      entry->sharded_selector->ReleaseMemory();
    }
    step_lock.unlock();
    ++released;
    std::lock_guard<std::mutex> lock(registry_mu_);
    // Re-check idleness: a touch that slipped in since the release already
    // cleared the flag, and its session deserves a fresh idle period.
    if (entry->last_touched < cutoff) entry->scratch_released = true;
  }
  return released;
}

size_t SessionManager::num_active() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return sessions_.size();
}

uint64_t SessionManager::num_created() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return num_created_;
}

}  // namespace setdisc
