#include "service/session_manager.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/status.h"

namespace setdisc {

SessionManager::SessionManager(const SetCollection& collection,
                               const InvertedIndex& index,
                               SessionManagerOptions options)
    : collection_(collection), index_(index), options_(std::move(options)) {
  SETDISC_CHECK_MSG(options_.selector_factory != nullptr,
                    "SessionManagerOptions.selector_factory must be set");
  size_t threads = options_.num_threads;
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  pool_ = std::make_unique<ThreadPool>(threads);
}

SessionManager::~SessionManager() {
  // Join the pool before the registry is torn down: queued StepAsync tasks
  // hold session ids, and resolving them needs the registry alive.
  pool_.reset();
}

SessionView SessionManager::MakeView(SessionId id,
                                     const DiscoverySession& session) {
  SessionView view;
  view.id = id;
  view.state = session.state();
  view.question = session.NextQuestion();
  view.verify_set = session.PendingVerify();
  view.questions_asked = session.result().questions;
  if (session.done()) view.result = session.result();
  return view;
}

SessionView SessionManager::Create(std::span<const EntityId> initial) {
  auto entry = std::make_shared<Entry>();
  entry->selector = options_.selector_factory();
  SETDISC_CHECK_MSG(entry->selector != nullptr,
                    "selector_factory returned nullptr");
  // The initial Select() runs outside the registry lock: it can be a real
  // scan, and other sessions must keep stepping meanwhile.
  entry->session = std::make_unique<DiscoverySession>(
      collection_, index_, initial, *entry->selector, options_.discovery);
  entry->last_touched = Clock::now();

  // Snapshot before publishing: ids are sequential and guessable, so the
  // moment the entry is in the registry another thread may lock entry->mu
  // and step the session; reading it after emplace would race.
  SessionView view = MakeView(kNoSession, *entry->session);
  if (entry->session->done()) {
    // Finished at birth (no matching candidates, or a single one with
    // verification off): the view already carries the final result, so
    // don't spend a registry slot — or evict a live conversation — on a
    // session that will never be stepped.
    std::lock_guard<std::mutex> lock(registry_mu_);
    view.id = next_id_++;
    ++num_created_;
    return view;
  }
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    ReapExpiredLocked();
    if (options_.max_sessions > 0 &&
        sessions_.size() >= options_.max_sessions) {
      // Evict the least recently touched session.
      auto lru = sessions_.end();
      for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
        if (lru == sessions_.end() ||
            it->second->last_touched < lru->second->last_touched) {
          lru = it;
        }
      }
      if (lru != sessions_.end()) sessions_.erase(lru);
    }
    view.id = next_id_++;
    ++num_created_;
    sessions_.emplace(view.id, std::move(entry));
  }
  return view;
}

std::shared_ptr<SessionManager::Entry> SessionManager::Find(SessionId id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return nullptr;
  it->second->last_touched = Clock::now();
  return it->second;
}

SessionStatus SessionManager::Get(SessionId id, SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::SubmitAnswer(SessionId id, Oracle::Answer answer,
                                           SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingAnswer) {
    return SessionStatus::kWrongState;
  }
  entry->session->SubmitAnswer(answer);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

SessionStatus SessionManager::Verify(SessionId id, bool confirmed,
                                     SessionView* view) {
  auto entry = Find(id);
  if (entry == nullptr) return SessionStatus::kNotFound;
  std::lock_guard<std::mutex> lock(entry->mu);
  if (entry->session->state() != SessionState::kAwaitingVerify) {
    return SessionStatus::kWrongState;
  }
  entry->session->Verify(confirmed);
  if (view != nullptr) *view = MakeView(id, *entry->session);
  return SessionStatus::kOk;
}

std::future<std::pair<SessionStatus, SessionView>>
SessionManager::SubmitAnswerAsync(SessionId id, Oracle::Answer answer) {
  return pool_->Submit([this, id, answer] {
    SessionView view;
    SessionStatus status = SubmitAnswer(id, answer, &view);
    return std::make_pair(status, view);
  });
}

SessionView SessionManager::Drive(SessionView view, Oracle& oracle) {
  // Bounded by the entity count per narrowing pass and the flip budget per
  // backtrack; the guard only catches protocol bugs.
  int guard = 0;
  while (view.state != SessionState::kFinished && guard++ < 1000000) {
    SessionStatus status;
    if (view.state == SessionState::kAwaitingAnswer) {
      status = SubmitAnswer(view.id, oracle.AskMembership(view.question),
                            &view);
    } else {
      status = Verify(view.id, oracle.ConfirmTarget(view.verify_set), &view);
    }
    if (status != SessionStatus::kOk) break;
  }
  return view;
}

SessionStatus SessionManager::Close(SessionId id) {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return sessions_.erase(id) > 0 ? SessionStatus::kOk
                                 : SessionStatus::kNotFound;
}

size_t SessionManager::ReapExpiredLocked() {
  if (options_.session_ttl.count() <= 0) return 0;
  const Clock::time_point cutoff = Clock::now() - options_.session_ttl;
  size_t reaped = 0;
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if (it->second->last_touched < cutoff) {
      it = sessions_.erase(it);
      ++reaped;
    } else {
      ++it;
    }
  }
  return reaped;
}

size_t SessionManager::ReapExpired() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return ReapExpiredLocked();
}

size_t SessionManager::num_active() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return sessions_.size();
}

uint64_t SessionManager::num_created() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return num_created_;
}

}  // namespace setdisc
