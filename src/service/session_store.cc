#include "service/session_store.h"

#include <utility>

#include "obs/registry.h"

namespace setdisc {

namespace {

constexpr uint8_t kRecordVersion = 1;
constexpr uint8_t kWalPut = 1;
constexpr uint8_t kWalErase = 2;

/// Events and initial ids get a sanity bound far above anything a real
/// conversation produces; a corrupt count must not drive a giant resize.
constexpr uint32_t kMaxVectorLen = 1u << 24;

}  // namespace

void EncodeSessionRecord(const SessionRecord& record, std::string* out) {
  ByteWriter w(out);
  w.PutU8(kRecordVersion);
  w.PutU64(record.id);
  w.PutU64(record.token);
  w.PutU64(record.collection_fingerprint);
  w.PutString(record.selector);
  w.PutU32(static_cast<uint32_t>(record.options.max_questions));
  w.PutU8(record.options.handle_dont_know ? 1 : 0);
  w.PutU8(record.options.verify_and_backtrack ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(record.options.max_backtracks));
  w.PutU8(record.flags);
  w.PutU8(record.create_effort);
  w.PutU32(static_cast<uint32_t>(record.initial.size()));
  for (EntityId e : record.initial) w.PutU32(e);
  w.PutU32(static_cast<uint32_t>(record.events.size()));
  for (const SessionEvent& ev : record.events) {
    w.PutU8(ev.kind);
    w.PutU8(ev.value);
    w.PutU8(ev.effort);
  }
}

bool DecodeSessionRecord(std::string_view data, SessionRecord* out) {
  ByteReader r(data);
  uint8_t version = 0;
  if (!r.GetU8(&version) || version != kRecordVersion) return false;
  SessionRecord rec;
  uint32_t max_questions = 0, max_backtracks = 0;
  uint8_t dont_know = 0, verify = 0;
  if (!r.GetU64(&rec.id) || !r.GetU64(&rec.token) ||
      !r.GetU64(&rec.collection_fingerprint) || !r.GetString(&rec.selector) ||
      !r.GetU32(&max_questions) || !r.GetU8(&dont_know) ||
      !r.GetU8(&verify) || !r.GetU32(&max_backtracks) ||
      !r.GetU8(&rec.flags) || !r.GetU8(&rec.create_effort)) {
    return false;
  }
  rec.options.max_questions = static_cast<int32_t>(max_questions);
  rec.options.handle_dont_know = dont_know != 0;
  rec.options.verify_and_backtrack = verify != 0;
  rec.options.max_backtracks = static_cast<int32_t>(max_backtracks);
  uint32_t n = 0;
  if (!r.GetU32(&n) || n > kMaxVectorLen) return false;
  rec.initial.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!r.GetU32(&rec.initial[i])) return false;
  }
  if (!r.GetU32(&n) || n > kMaxVectorLen) return false;
  rec.events.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    SessionEvent& ev = rec.events[i];
    if (!r.GetU8(&ev.kind) || !r.GetU8(&ev.value) || !r.GetU8(&ev.effort)) {
      return false;
    }
    if (ev.kind > kEventVerify) return false;
  }
  if (!r.Exhausted()) return false;
  *out = std::move(rec);
  return true;
}

SessionStore::SessionStore(SessionStoreOptions options)
    : options_(std::move(options)),
      fs_(options_.fs != nullptr ? options_.fs : StoreFs::Real()) {
  if (options_.wal_batch_records == 0) options_.wal_batch_records = 1;
  if (obs::Enabled()) {
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    wal_records_counter_ = reg.GetCounter("setdisc_store_wal_records_total");
    wal_bytes_counter_ = reg.GetCounter("setdisc_store_wal_bytes_total");
    checkpoints_counter_ = reg.GetCounter("setdisc_store_checkpoints_total");
    io_errors_counter_ = reg.GetCounter("setdisc_store_io_errors_total");
  }
}

SessionStore::~SessionStore() {
  std::lock_guard<std::mutex> lock(mu_);
  (void)FlushLocked();
}

void SessionStore::ReplayPayload(std::string_view payload) {
  ByteReader r(payload);
  uint8_t kind = 0;
  if (!r.GetU8(&kind)) {
    ++stats_.dropped;
    return;
  }
  std::string_view body = payload.substr(1);
  if (kind == kWalPut) {
    SessionRecord rec;
    if (!DecodeSessionRecord(body, &rec)) {
      ++stats_.dropped;
      return;
    }
    // Track the id even for dropped records: a restart over a different
    // collection must still never reissue an id some old record holds.
    if (rec.id > max_id_) max_id_ = rec.id;
    if (rec.collection_fingerprint != collection_fp_) {
      ++stats_.dropped;
      return;
    }
    records_[rec.id].assign(body);
    ++stats_.replayed;
  } else if (kind == kWalErase) {
    uint64_t id = 0;
    ByteReader er(body);
    if (!er.GetU64(&id) || !er.Exhausted()) {
      ++stats_.dropped;
      return;
    }
    records_.erase(id);
    ++stats_.replayed;
  }
  // Unknown kinds are skipped: a newer writer's record types must not brick
  // replay on an older binary.
}

Status SessionStore::Open(uint64_t collection_fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  collection_fp_ = collection_fingerprint;
  Status dir_status = fs_->CreateDir(options_.dir);
  if (!dir_status.ok()) return dir_status;

  auto replay_file = [this](const std::string& path) {
    if (!fs_->FileExists(path)) return;
    Result<std::string> data = fs_->ReadFile(path);
    if (!data.ok()) {
      ++stats_.io_errors;
      return;
    }
    RecordScan scan = ScanRecords(
        data.value(), [this](std::string_view payload) { ReplayPayload(payload); },
        options_.max_record_bytes + 64);
    if (scan.torn_tail) {
      stats_.torn_bytes += data.value().size() - scan.valid_bytes;
    }
  };
  replay_file(CheckpointPath());
  replay_file(WalPath());
  open_ = true;

  // Compact immediately: the replayed WAL (torn tail and all) is folded
  // into a fresh checkpoint and the WAL restarts empty, so a crash loop
  // cannot grow the log without bound and the torn bytes are gone for good.
  // A compaction failure is not fatal — it leaves the store degraded and
  // the old files intact, which replays identically next time.
  (void)CheckpointLocked();
  return Status::OK();
}

bool SessionStore::Put(const SessionRecord& record) {
  std::string body;
  EncodeSessionRecord(record, &body);
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.puts;
  if (record.id > max_id_) max_id_ = record.id;
  records_[record.id] = body;
  if (degraded_) return false;
  AppendWalLocked(kWalPut, body);
  return !degraded_;
}

void SessionStore::Erase(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (records_.erase(id) == 0) return;
  ++stats_.erases;
  if (degraded_) return;
  std::string body;
  ByteWriter(&body).PutU64(id);
  AppendWalLocked(kWalErase, body);
}

bool SessionStore::Get(uint64_t id, SessionRecord* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(id);
  if (it == records_.end()) return false;
  return DecodeSessionRecord(it->second, out);
}

bool SessionStore::Contains(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.find(id) != records_.end();
}

std::vector<uint64_t> SessionStore::Ids() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(records_.size());
  for (const auto& [id, body] : records_) ids.push_back(id);
  return ids;
}

void SessionStore::AppendWalLocked(uint8_t kind, std::string_view body) {
  std::string payload;
  payload.reserve(body.size() + 1);
  payload.push_back(static_cast<char>(kind));
  payload.append(body);
  AppendRecord(&pending_, payload);
  ++pending_records_;
  if (pending_records_ >= options_.wal_batch_records) {
    (void)FlushLocked();
  }
}

Status SessionStore::FlushLocked() {
  if (pending_.empty() || !open_ || degraded_) {
    pending_.clear();
    pending_records_ = 0;
    return Status::OK();
  }
  if (wal_ == nullptr) {
    Result<std::unique_ptr<WritableFile>> file =
        fs_->OpenAppendable(WalPath());
    if (!file.ok()) {
      ++stats_.io_errors;
      if (io_errors_counter_ != nullptr) io_errors_counter_->Add();
      degraded_ = true;
      pending_.clear();
      pending_records_ = 0;
      return file.status();
    }
    wal_ = std::move(file.value());
  }
  Status s = wal_->Append(pending_);
  if (s.ok() && options_.fsync) s = wal_->Sync();
  if (!s.ok()) {
    // The file may now end in a torn record; appending more after it would
    // make everything past the tear unreadable on replay. Stop writing —
    // the next successful Checkpoint() rewrites the world and heals this.
    ++stats_.io_errors;
    if (io_errors_counter_ != nullptr) io_errors_counter_->Add();
    degraded_ = true;
    wal_.reset();
    pending_.clear();
    pending_records_ = 0;
    return s;
  }
  stats_.wal_bytes += pending_.size();
  ++stats_.wal_flushes;
  if (wal_records_counter_ != nullptr) {
    wal_records_counter_->Add(pending_records_);
  }
  if (wal_bytes_counter_ != nullptr) wal_bytes_counter_->Add(pending_.size());
  pending_.clear();
  pending_records_ = 0;
  return Status::OK();
}

Status SessionStore::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  return FlushLocked();
}

Status SessionStore::CheckpointLocked() {
  if (!open_) return Status::Error("session store not open");
  std::string data;
  for (const auto& [id, body] : records_) {
    std::string payload;
    payload.reserve(body.size() + 1);
    payload.push_back(static_cast<char>(kWalPut));
    payload.append(body);
    AppendRecord(&data, payload);
  }
  Status s = fs_->WriteFileAtomic(CheckpointPath(), data, options_.fsync);
  if (!s.ok()) {
    ++stats_.io_errors;
    if (io_errors_counter_ != nullptr) io_errors_counter_->Add();
    degraded_ = true;
    return s;
  }
  // Everything pending is inside the checkpoint; the WAL restarts empty.
  pending_.clear();
  pending_records_ = 0;
  wal_.reset();
  Status t = fs_->Truncate(WalPath());
  ++stats_.checkpoints;
  if (checkpoints_counter_ != nullptr) checkpoints_counter_->Add();
  if (!t.ok()) {
    // The state itself is safe (the checkpoint holds everything), but new
    // appends after the old WAL content — possibly ending in a torn record —
    // would be unreadable on replay. Stay degraded until a truncate works.
    ++stats_.io_errors;
    if (io_errors_counter_ != nullptr) io_errors_counter_->Add();
    degraded_ = true;
    return t;
  }
  degraded_ = false;
  return Status::OK();
}

Status SessionStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

uint64_t SessionStore::max_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_id_;
}

size_t SessionStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

bool SessionStore::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

SessionStoreStats SessionStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace setdisc
