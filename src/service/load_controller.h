#pragma once

/// \file load_controller.h
/// Feedback controller for load-adaptive serving.
///
/// The serving stack has fixed capacity (the manager's ThreadPool) and, until
/// now, gave every request the same selector budget no matter how deep the
/// queue was — so a burst of 2-LP sessions melts p99 for everyone. This
/// controller closes the loop the PR 6 sensors opened: it periodically reads
/// the step-latency histogram and pool queue depth and drives three
/// actuators, in escalating order of how much they give up:
///
///  1. **Admission** (cheapest, most reversible): past a queue-depth
///     watermark, new CreateSessions are refused with WireStatus::kBusy and
///     a retry-after hint — shedding *new* conversations before they make
///     existing ones miss their latency target. Re-opens with hysteresis
///     (resume depth < watermark) so admission doesn't flap at the boundary.
///  2. **Degradation**: under *sustained* p99 pressure, raise the process
///     effort level, which shrinks the k-LP lookahead depth one step per
///     level (core/selector.h SetEffort; clamped at a 1-step decision). A
///     degraded answer is a worse question, never a wrong one — quality is
///     traded for bounded tail latency, the rasr DynamicBeamPruningStrategy
///     move. Re-widens with hysteresis when p99 recovers.
///  3. **Load-aware eviction**: while under pressure, idle sessions are
///     reaped on a much shorter leash than the configured TTL, returning
///     their scratch memory and table slots to the sessions actually
///     talking.
///
/// The p99 the controller reacts to is *windowed*: registry histograms are
/// cumulative, so each Tick() subtracts the previous snapshot bucket-wise
/// and quantiles the delta — reacting to the last window's traffic, not the
/// whole process history. Windows with too few samples carry no signal and
/// count toward recovery (an idle server re-widens).
///
/// Everything is deterministic and injectable: the clock is a Clock* (tests
/// use FakeClock), the sensors are std::functions (tests script arbitrary
/// latency feeds), and Tick() is public so every hysteresis transition is
/// unit-testable without a single sleep. Start() merely runs MaybeTick() on
/// a background thread for production use.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "util/clock.h"

namespace setdisc {

/// One sensor reading. `step_latency` is CUMULATIVE (as MetricsRegistry
/// snapshots are); the controller windows it internally.
struct LoadSample {
  obs::HistogramSnapshot step_latency;
  size_t queue_depth = 0;
};

struct LoadControllerOptions {
  /// Control period: MaybeTick() no-ops until this much injected-clock time
  /// has passed since the last tick; Start()'s thread runs at this cadence.
  std::chrono::milliseconds tick_interval{100};

  /// Admission watermark on pool queue depth; 0 disables admission control
  /// (every Create admitted). Refusals begin at depth >= watermark.
  size_t admit_queue_watermark = 0;
  /// Admission re-opens only once depth has drained to <= this (hysteresis;
  /// defaulted to watermark / 2 when left 0 with a watermark set).
  size_t admit_resume_depth = 0;
  /// Retry-after hint attached to kBusy refusals.
  uint32_t retry_after_ms = 50;

  /// Degradation target: p99 windowed step latency in nanoseconds; 0
  /// disables the degradation actuator entirely.
  uint64_t target_p99_ns = 0;
  /// Recovery threshold as a fraction of target: p99 must fall below
  /// recover_fraction * target to count toward re-widening. The dead band
  /// between the two is what prevents oscillation on noisy p99.
  double recover_fraction = 0.7;
  /// Consecutive over-target windows before degrading one level.
  int degrade_after_ticks = 3;
  /// Consecutive under-threshold (or idle) windows before re-widening one.
  int recover_after_ticks = 5;
  /// Ceiling of the effort ladder. The selector additionally clamps to a
  /// 1-step decision, so this only bounds how far there is to climb back.
  int max_effort_level = 4;
  /// Windows with fewer samples than this carry no latency signal.
  uint64_t min_window_count = 8;

  /// Idle leash used for pressure eviction; 0 disables the actuator. Only
  /// applied while under pressure (admission closed or effort > 0).
  std::chrono::milliseconds pressure_idle_ttl{0};

  /// Registry to publish controller state into (gauges for level/admission,
  /// counters for rejections and ladder transitions); nullptr = none.
  obs::MetricsRegistry* metrics = nullptr;
};

class LoadController {
 public:
  /// Full sensor reading, consumed once per Tick().
  using MetricsSource = std::function<LoadSample()>;
  /// Cheap live queue-depth read, consumed on every AdmitCreate() — kept
  /// separate so admission reacts to bursts *between* ticks.
  using DepthSource = std::function<size_t()>;
  /// Pressure-eviction actuator: reap sessions idle longer than the given
  /// leash, returning how many were reaped (SessionManager::ReapIdle).
  using IdleReaper = std::function<size_t(std::chrono::milliseconds)>;
  /// Degradation actuator: called with the new level on every ladder
  /// transition (SessionManager::SetEffortLevel). Runs inside Tick() — keep
  /// it cheap and never call back into the controller.
  using EffortSink = std::function<void(int)>;

  /// `clock` may be null (the real clock). The sources must stay valid for
  /// the controller's lifetime.
  LoadController(LoadControllerOptions options, MetricsSource source,
                 DepthSource depth, const Clock* clock = nullptr);
  ~LoadController();

  LoadController(const LoadController&) = delete;
  LoadController& operator=(const LoadController&) = delete;

  /// Optional eviction actuator; set before Start().
  void set_idle_reaper(IdleReaper reaper) { reaper_ = std::move(reaper); }

  /// Optional degradation actuator; set before Start(). Sessions that poll
  /// effort_source() directly don't need one — the sink exists so an
  /// engine-owned cell (the SessionManager's) mirrors the ladder without
  /// the engine holding a controller pointer (lifetime stays one-way:
  /// controller → manager).
  void set_effort_sink(EffortSink sink) { effort_sink_ = std::move(sink); }

  /// Background control thread at tick_interval cadence. Idempotent.
  void Start();
  /// Joins the control thread; safe to call repeatedly or without Start().
  void Stop();

  /// One control decision, unconditionally (tests drive this directly).
  void Tick();
  /// Tick() only if tick_interval has elapsed on the injected clock since
  /// the last tick. Returns whether a tick ran.
  bool MaybeTick();

  /// Admission decision for one CreateSession. Thread-safe; on refusal
  /// fills `*retry_after_ms` (if non-null) with the back-off hint and
  /// returns false. Always true when admission control is disabled.
  bool AdmitCreate(uint32_t* retry_after_ms);

  /// Current degradation level (0 = full effort). Sessions read this at
  /// every step entry; relaxed is plenty for a quality knob.
  int effort_level() const {
    return effort_level_.load(std::memory_order_relaxed);
  }

  /// Address for sessions to poll without holding a controller pointer.
  const std::atomic<int>* effort_source() const { return &effort_level_; }

  /// Whether new Creates are currently admitted.
  bool admitting() const {
    return admitting_.load(std::memory_order_relaxed);
  }

  const LoadControllerOptions& options() const { return options_; }

  /// Monitoring totals (also published through the registry probe).
  uint64_t rejected_total() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  uint64_t degrade_total() const {
    return degrades_.load(std::memory_order_relaxed);
  }
  uint64_t recover_total() const {
    return recovers_.load(std::memory_order_relaxed);
  }
  uint64_t pressure_reaped_total() const {
    return pressure_reaped_.load(std::memory_order_relaxed);
  }
  /// Windowed p99 from the most recent tick (0 when the window was empty).
  uint64_t last_window_p99_ns() const {
    return last_p99_.load(std::memory_order_relaxed);
  }

 private:
  /// Bucket-wise cur - prev; cumulative in, windowed out. Tolerates empty
  /// bucket vectors and (defensively) counter regressions.
  static obs::HistogramSnapshot WindowDelta(const obs::HistogramSnapshot& cur,
                                            const obs::HistogramSnapshot& prev);

  void RunLoop();

  LoadControllerOptions options_;
  MetricsSource source_;
  DepthSource depth_;
  IdleReaper reaper_;
  EffortSink effort_sink_;
  const Clock* clock_;

  /// Actuator outputs, read lock-free from serving threads.
  std::atomic<int> effort_level_{0};
  std::atomic<bool> admitting_{true};

  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> degrades_{0};
  std::atomic<uint64_t> recovers_{0};
  std::atomic<uint64_t> pressure_reaped_{0};
  std::atomic<uint64_t> last_p99_{0};

  /// Tick state: previous cumulative snapshot and the hysteresis counters.
  /// Guarded so a background thread and a test calling Tick() can't
  /// interleave one window.
  std::mutex tick_mu_;
  obs::HistogramSnapshot prev_latency_;
  bool have_prev_ = false;
  int over_ticks_ = 0;
  int under_ticks_ = 0;
  Clock::time_point last_tick_{};
  bool have_last_tick_ = false;

  /// Admission flap-guard (AdmitCreate runs on the server's event loop; the
  /// mutex is uncontended in practice and keeps open/close transitions
  /// well-ordered when tests hammer it from threads).
  std::mutex admit_mu_;

  std::thread thread_;
  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  bool running_ = false;

  obs::MetricsRegistry::ProbeHandle probe_;
};

}  // namespace setdisc
