#include "service/durability.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace setdisc {

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

namespace {

struct Crc32Table {
  uint32_t t[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
  }
};

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const Crc32Table table;
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = table.t[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendRecord(std::string* out, std::string_view payload) {
  ByteWriter w(out);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU32(Crc32(payload));
  w.PutBytes(payload);
}

RecordScan ScanRecords(std::string_view data,
                       const std::function<void(std::string_view)>& fn,
                       size_t max_payload) {
  RecordScan scan;
  size_t pos = 0;
  while (data.size() - pos >= 8) {
    ByteReader r(data.substr(pos, 8));
    uint32_t len = 0, crc = 0;
    r.GetU32(&len);
    r.GetU32(&crc);
    if (len > max_payload || data.size() - pos - 8 < len) break;
    std::string_view payload = data.substr(pos + 8, len);
    if (Crc32(payload) != crc) break;
    fn(payload);
    pos += 8 + len;
    ++scan.records;
    scan.valid_bytes = pos;
  }
  scan.torn_tail = pos < data.size();
  return scan;
}

// ---------------------------------------------------------------------------
// POSIX StoreFs
// ---------------------------------------------------------------------------

namespace {

class PosixWritableFile final : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    size_t done = 0;
    while (done < data.size()) {
      ssize_t n = ::write(fd_, data.data() + done, data.size() - done);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("append: ") + std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

class PosixStoreFs final : public StoreFs {
 public:
  Result<std::string> ReadFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
    std::string out;
    char buf[1 << 16];
    for (;;) {
      ssize_t n = ::read(fd, buf, sizeof buf);
      if (n < 0) {
        if (errno == EINTR) continue;
        Status s = Status::IoError(ErrnoMessage("read", path));
        ::close(fd);
        return s;
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                    0644);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", path));
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd));
  }

  Status WriteFileAtomic(const std::string& path, std::string_view data,
                         bool sync) override {
    const std::string tmp = path + ".tmp";
    int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                    0644);
    if (fd < 0) return Status::IoError(ErrnoMessage("open", tmp));
    {
      PosixWritableFile file(fd);  // owns fd; closes on scope exit
      Status s = file.Append(data);
      if (s.ok() && sync) s = file.Sync();
      if (!s.ok()) {
        ::unlink(tmp.c_str());
        return s;
      }
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      Status s = Status::IoError(ErrnoMessage("rename", tmp));
      ::unlink(tmp.c_str());
      return s;
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("unlink", path));
    }
    return Status::OK();
  }

  Status Truncate(const std::string& path) override {
    if (::truncate(path.c_str(), 0) != 0 && errno != ENOENT) {
      return Status::IoError(ErrnoMessage("truncate", path));
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status CreateDir(const std::string& path) override {
    // mkdir -p semantics: a spill dir handed to --spill-dir (or a bench
    // scratch dir) may name a path whose parents don't exist yet.
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) {
      return Status::IoError("mkdir " + path + ": " + ec.message());
    }
    return Status::OK();
  }
};

}  // namespace

StoreFs* StoreFs::Real() {
  static PosixStoreFs* fs = new PosixStoreFs();
  return fs;
}

// ---------------------------------------------------------------------------
// FaultFs
// ---------------------------------------------------------------------------

class FaultFs::FaultyFile final : public WritableFile {
 public:
  FaultyFile(FaultFs* owner, std::unique_ptr<WritableFile> base)
      : owner_(owner), base_(std::move(base)) {}

  Status Append(std::string_view data) override {
    const uint64_t ordinal =
        owner_->appends_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (owner_->crash_hook_ != nullptr && !owner_->crash_hook_(ordinal)) {
      return Status::IoError("fault injection: crash point");
    }
    // Byte budget: write the part that "fits the disk", then fail — the
    // torn-record shape a real ENOSPC leaves behind.
    int64_t budget = owner_->append_budget_.load(std::memory_order_relaxed);
    if (budget >= 0) {
      const int64_t take =
          std::min<int64_t>(budget, static_cast<int64_t>(data.size()));
      owner_->append_budget_.store(budget - take, std::memory_order_relaxed);
      if (static_cast<size_t>(take) < data.size()) {
        if (take > 0) {
          Status s = base_->Append(data.substr(0, static_cast<size_t>(take)));
          if (!s.ok()) return s;
          owner_->appended_bytes_.fetch_add(static_cast<uint64_t>(take),
                                            std::memory_order_relaxed);
        }
        return Status::IoError("fault injection: no space left");
      }
    }
    Status s = base_->Append(data);
    if (s.ok()) {
      owner_->appended_bytes_.fetch_add(data.size(),
                                        std::memory_order_relaxed);
    }
    return s;
  }

  Status Sync() override {
    owner_->syncs_.fetch_add(1, std::memory_order_relaxed);
    if (owner_->fail_sync_.load(std::memory_order_relaxed)) {
      return Status::IoError("fault injection: fsync failed");
    }
    return base_->Sync();
  }

 private:
  FaultFs* owner_;
  std::unique_ptr<WritableFile> base_;
};

Result<std::string> FaultFs::ReadFile(const std::string& path) {
  return base_->ReadFile(path);
}

Result<std::unique_ptr<WritableFile>> FaultFs::OpenAppendable(
    const std::string& path) {
  Result<std::unique_ptr<WritableFile>> base = base_->OpenAppendable(path);
  if (!base.ok()) return base;
  return std::unique_ptr<WritableFile>(
      new FaultyFile(this, std::move(base.value())));
}

Status FaultFs::WriteFileAtomic(const std::string& path, std::string_view data,
                                bool sync) {
  if (fail_atomic_write_.load(std::memory_order_relaxed)) {
    return Status::IoError("fault injection: atomic write failed");
  }
  return base_->WriteFileAtomic(path, data, sync);
}

Status FaultFs::Remove(const std::string& path) { return base_->Remove(path); }

Status FaultFs::Truncate(const std::string& path) {
  return base_->Truncate(path);
}

bool FaultFs::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Status FaultFs::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

}  // namespace setdisc
