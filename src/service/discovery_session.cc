#include "service/discovery_session.h"

#include <algorithm>
#include <utility>

#include "util/status.h"

namespace setdisc {

namespace {

std::vector<SetId> RemoveRejected(std::vector<SetId> ids,
                                  const std::unordered_set<SetId>& rejected) {
  if (rejected.empty()) return ids;
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [&](SetId s) { return rejected.count(s) > 0; }),
            ids.end());
  return ids;
}

}  // namespace

DiscoverySession::DiscoverySession(const SetCollection& collection,
                                   const InvertedIndex& index,
                                   std::span<const EntityId> initial,
                                   EntitySelector& selector,
                                   const DiscoveryOptions& options)
    : collection_(&collection), selector_(&selector), options_(options) {
  // Lines 1-4: candidates are the supersets of the initial example set I.
  std::vector<SetId> cs_ids = index.SetsContainingAll(initial);
  if (cs_ids.empty()) {
    Finish();
    return;
  }
  candidates_ = SubCollection(collection_, std::move(cs_ids));
  Advance();
}

void DiscoverySession::Advance() {
  // Lines 5-12 of Algorithm 2, one narrowing step at a time: while several
  // candidates remain, each Advance() either parks in kAwaitingAnswer with
  // the next question or finishes; SubmitAnswer() partitions and calls
  // Advance() again, which is what iterates the original inner loop.
  if (candidates_.size() > 1) {
    if (options_.max_questions >= 0 &&
        result_.questions >= options_.max_questions) {
      result_.halted = true;  // the halt condition Γ fired
      result_.candidates.assign(candidates_.ids().begin(),
                                candidates_.ids().end());
      Finish();
      return;
    }
    EntityId e =
        selector_->Select(candidates_, any_excluded_ ? &excluded_ : nullptr);
    if (e == kNoEntity) {
      // Every informative entity excluded: cannot narrow further (§6).
      result_.candidates.assign(candidates_.ids().begin(),
                                candidates_.ids().end());
      Finish();
      return;
    }
    pending_entity_ = e;
    state_ = SessionState::kAwaitingAnswer;
    return;
  }

  result_.candidates.assign(candidates_.ids().begin(), candidates_.ids().end());
  if (!options_.verify_and_backtrack) {
    Finish();
    return;
  }
  if (candidates_.size() == 1) {
    pending_set_ = candidates_.front();
    state_ = SessionState::kAwaitingVerify;
    return;
  }
  // Degenerate: exclusions/backtracking left no candidate at all — try the
  // remaining branches of the answer tree.
  Backtrack();
}

void DiscoverySession::SubmitAnswer(Oracle::Answer answer) {
  SETDISC_CHECK_MSG(state_ == SessionState::kAwaitingAnswer,
                    "SubmitAnswer outside kAwaitingAnswer");
  EntityId e = pending_entity_;
  pending_entity_ = kNoEntity;

  ++result_.questions;
  result_.transcript.emplace_back(e, answer);

  if (answer == Oracle::Answer::kDontKnow && options_.handle_dont_know) {
    excluded_.Set(e);
    any_excluded_ = true;
    Advance();  // re-select on the same candidate collection
    return;
  }
  bool yes = answer == Oracle::Answer::kYes;
  if (options_.verify_and_backtrack) {
    Frame f;
    f.ids_before.assign(candidates_.ids().begin(), candidates_.ids().end());
    f.entity = e;
    f.answered_yes = yes;
    frames_.push_back(std::move(f));
  }
  // Derive the children's fingerprints during the partition: when a shared
  // selection cache is on, the selector just computed this view's
  // fingerprint, and the next Select() will want the survivor's.
  auto [in, out] = candidates_.Partition(e, /*derive_fingerprints=*/true);
  candidates_ = yes ? std::move(in) : std::move(out);
  Advance();
}

void DiscoverySession::Verify(bool confirmed) {
  SETDISC_CHECK_MSG(state_ == SessionState::kAwaitingVerify,
                    "Verify outside kAwaitingVerify");
  SetId s = pending_set_;
  pending_set_ = kNoSet;

  if (confirmed) {
    result_.confirmed = true;
    Finish();
    return;
  }
  // §6 error recovery: the discovered set was refuted.
  rejected_.insert(s);
  Backtrack();
}

void DiscoverySession::Backtrack() {
  // Flip the most recent unflipped answer and resume on the branch opposite
  // to the (suspected erroneous) answer.
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (f.flipped) {
      frames_.pop_back();
      continue;
    }
    f.flipped = true;
    SubCollection before(collection_, f.ids_before);
    auto [in, out] = before.Partition(f.entity);
    std::vector<SetId> alt((f.answered_yes ? out : in).ids().begin(),
                           (f.answered_yes ? out : in).ids().end());
    alt = RemoveRejected(std::move(alt), rejected_);
    if (alt.empty()) continue;  // nothing viable there; keep unwinding
    if (result_.backtracks >= options_.max_backtracks) {
      result_.candidates = std::move(alt);
      Finish();
      return;
    }
    ++result_.backtracks;
    candidates_ = SubCollection(collection_, std::move(alt));
    Advance();
    return;
  }
  // Exhausted the answer tree without confirmation.
  Finish();
}

DiscoveryResult DiscoverySession::TakeResult() {
  SETDISC_CHECK_MSG(done(), "TakeResult on an unfinished session");
  return std::move(result_);
}

}  // namespace setdisc
