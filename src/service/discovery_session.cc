#include "service/discovery_session.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/journey.h"
#include "obs/registry.h"
#include "util/status.h"

namespace setdisc {

namespace {

obs::Counter* StepsCounter(uint8_t kind) {
  static obs::Counter* const answers =
      obs::MetricsRegistry::Default().GetCounter("setdisc_steps_total",
                                                 {{"kind", "answer"}});
  static obs::Counter* const verifies =
      obs::MetricsRegistry::Default().GetCounter("setdisc_steps_total",
                                                 {{"kind", "verify"}});
  return kind == 0 ? answers : verifies;
}

obs::Labels SessionLabels(std::string_view selector, size_t shards) {
  return obs::Labels{{"selector", std::string(selector)},
                     {"shards", std::to_string(shards)}};
}

}  // namespace

SubCollection UnshardedEngine::Filter(
    SubCollection view, const std::unordered_set<SetId>& rejected) const {
  if (rejected.empty()) return view;
  std::vector<SetId> ids(view.ids().begin(), view.ids().end());
  ids.erase(std::remove_if(ids.begin(), ids.end(),
                           [&](SetId s) { return rejected.count(s) > 0; }),
            ids.end());
  return SubCollection(collection, std::move(ids));
}

ShardedSubCollection ShardedEngine::Filter(
    ShardedSubCollection view, const std::unordered_set<SetId>& rejected) const {
  if (rejected.empty()) return view;
  std::vector<SubCollection> shards;
  shards.reserve(view.num_shards());
  for (size_t k = 0; k < view.num_shards(); ++k) {
    std::vector<SetId> ids(view.shard(k).ids().begin(),
                           view.shard(k).ids().end());
    ids.erase(std::remove_if(ids.begin(), ids.end(),
                             [&](SetId local) {
                               return rejected.count(
                                          collection->GlobalId(k, local)) > 0;
                             }),
              ids.end());
    shards.emplace_back(&collection->shard(k), std::move(ids));
  }
  return ShardedSubCollection(collection, std::move(shards));
}

template <typename Engine>
BasicDiscoverySession<Engine>::BasicDiscoverySession(
    Engine engine, std::span<const EntityId> initial, Selector& selector,
    const DiscoveryOptions& options)
    : engine_(std::move(engine)), selector_(&selector), options_(options) {
  const bool metrics = obs::Enabled();
  uint64_t t0 = 0;
  if (metrics) {
    // One registry lookup per session; every Record() after this is
    // lock-free. Creation already pays index scans, so the lookup noise is
    // negligible there.
    obs::Labels labels = SessionLabels(selector.name(), engine_.NumShards());
    step_hist_ = obs::MetricsRegistry::Default().GetHistogram(
        "setdisc_step_latency_ns", labels);
    t0 = obs::NowNanos();
  }
  // Lines 1-4: candidates are the supersets of the initial example set I.
  candidates_ = engine_.Initial(initial);
  if (candidates_.empty()) {
    Finish();
  } else {
    Advance();
  }
  if (metrics) {
    obs::MetricsRegistry::Default()
        .GetHistogram("setdisc_create_latency_ns",
                      SessionLabels(selector.name(), engine_.NumShards()))
        ->Record(obs::NowNanos() - t0);
  }
}

template <typename Engine>
void BasicDiscoverySession<Engine>::Advance() {
  // Lines 5-12 of Algorithm 2, one narrowing step at a time: while several
  // candidates remain, each Advance() either parks in kAwaitingAnswer with
  // the next question or finishes; SubmitAnswer() partitions and calls
  // Advance() again, which is what iterates the original inner loop.
  if (candidates_.size() > 1) {
    if (options_.max_questions >= 0 &&
        result_.questions >= options_.max_questions) {
      result_.halted = true;  // the halt condition Γ fired
      engine_.AppendGlobal(candidates_, &result_.candidates);
      Finish();
      return;
    }
    EntityId e;
    {
      obs::PhaseTimer select_timer(obs::Phase::kSelect);
      e = selector_->Select(candidates_, any_excluded_ ? &excluded_ : nullptr);
    }
    if (e == kNoEntity) {
      // Every informative entity excluded: cannot narrow further (§6).
      engine_.AppendGlobal(candidates_, &result_.candidates);
      Finish();
      return;
    }
    pending_entity_ = e;
    state_ = SessionState::kAwaitingAnswer;
    return;
  }

  engine_.AppendGlobal(candidates_, &result_.candidates);
  if (!options_.verify_and_backtrack) {
    Finish();
    return;
  }
  if (candidates_.size() == 1) {
    pending_set_ = engine_.Front(candidates_);
    state_ = SessionState::kAwaitingVerify;
    return;
  }
  // Degenerate: exclusions/backtracking left no candidate at all — try the
  // remaining branches of the answer tree.
  Backtrack();
}

template <typename Engine>
void BasicDiscoverySession<Engine>::SubmitAnswer(Oracle::Answer answer) {
  // Step entry is the one degradation point: the level is re-read here (not
  // mid-step) so one step runs at one effort level end to end.
  ApplyEffort();
  const bool metrics = obs::Enabled() && step_hist_ != nullptr;
  if (!metrics && trace_ == nullptr && obs::CurrentJourney() == nullptr) {
    DoSubmitAnswer(answer);
    return;
  }
  const EntityId entity = pending_entity_;
  const size_t before = candidates_.size();
  obs::PhaseAccum accum;
  const uint64_t t0 = obs::NowNanos();
  {
    obs::PhaseScope scope(&accum);
    DoSubmitAnswer(answer);
  }
  RecordStep(/*kind=*/0, entity, before, obs::NowNanos() - t0, accum);
}

template <typename Engine>
void BasicDiscoverySession<Engine>::DoSubmitAnswer(Oracle::Answer answer) {
  SETDISC_CHECK_MSG(state_ == SessionState::kAwaitingAnswer,
                    "SubmitAnswer outside kAwaitingAnswer");
  EntityId e = pending_entity_;
  pending_entity_ = kNoEntity;

  ++result_.questions;
  result_.transcript.emplace_back(e, answer);

  if (answer == Oracle::Answer::kDontKnow && options_.handle_dont_know) {
    excluded_.Set(e);
    any_excluded_ = true;
    Advance();  // re-select on the same candidate collection
    return;
  }
  bool yes = answer == Oracle::Answer::kYes;
  if (options_.verify_and_backtrack) {
    Frame f;
    f.before = candidates_;
    f.entity = e;
    f.answered_yes = yes;
    frames_.push_back(std::move(f));
  }
  {
    // The emit phase: partition-on-answer plus the counting-state handoff.
    obs::PhaseTimer emit_timer(obs::Phase::kEmit);
    // Derive the children's fingerprints during the partition: when a shared
    // selection cache is on, the selector just computed this view's
    // fingerprint, and the next Select() will want the survivor's; the
    // differential counting state keys its parent/child chain on them too.
    auto [in, out] = engine_.Partition(candidates_, e,
                                       /*derive_fingerprints=*/true);
    // Report the partition to the selector's counting state, handing over the
    // dropped half: the next Select() can then derive its counts from this
    // step's instead of recounting (collection/delta_counter.h).
    if (yes) {
      selector_->NotePartition(candidates_, e, /*kept_contains=*/true, in,
                               std::move(out));
      candidates_ = std::move(in);
    } else {
      selector_->NotePartition(candidates_, e, /*kept_contains=*/false, out,
                               std::move(in));
      candidates_ = std::move(out);
    }
  }
  Advance();
}

template <typename Engine>
void BasicDiscoverySession<Engine>::Verify(bool confirmed) {
  ApplyEffort();
  const bool metrics = obs::Enabled() && step_hist_ != nullptr;
  if (!metrics && trace_ == nullptr && obs::CurrentJourney() == nullptr) {
    DoVerify(confirmed);
    return;
  }
  const size_t before = candidates_.size();
  obs::PhaseAccum accum;
  const uint64_t t0 = obs::NowNanos();
  {
    obs::PhaseScope scope(&accum);
    DoVerify(confirmed);
  }
  RecordStep(/*kind=*/1, kNoEntity, before, obs::NowNanos() - t0, accum);
}

template <typename Engine>
void BasicDiscoverySession<Engine>::DoVerify(bool confirmed) {
  SETDISC_CHECK_MSG(state_ == SessionState::kAwaitingVerify,
                    "Verify outside kAwaitingVerify");
  SetId s = pending_set_;
  pending_set_ = kNoSet;

  if (confirmed) {
    result_.confirmed = true;
    Finish();
    return;
  }
  // §6 error recovery: the discovered set was refuted.
  rejected_.insert(s);
  Backtrack();
}

template <typename Engine>
void BasicDiscoverySession<Engine>::Backtrack() {
  // The candidate view is about to jump to an ancestor state: whatever
  // counts the selector retained describe a view the session is leaving.
  selector_->InvalidateCountState();
  // Flip the most recent unflipped answer and resume on the branch opposite
  // to the (suspected erroneous) answer.
  while (!frames_.empty()) {
    Frame& f = frames_.back();
    if (f.flipped) {
      frames_.pop_back();
      continue;
    }
    f.flipped = true;
    auto [in, out] = engine_.Partition(f.before, f.entity,
                                       /*derive_fingerprints=*/false);
    View alt = engine_.Filter(f.answered_yes ? std::move(out) : std::move(in),
                              rejected_);
    if (alt.empty()) continue;  // nothing viable there; keep unwinding
    if (result_.backtracks >= options_.max_backtracks) {
      engine_.AppendGlobal(alt, &result_.candidates);
      Finish();
      return;
    }
    ++result_.backtracks;
    candidates_ = std::move(alt);
    Advance();
    return;
  }
  // Exhausted the answer tree without confirmation.
  Finish();
}

template <typename Engine>
void BasicDiscoverySession<Engine>::EnableTracing(size_t capacity) {
  if (trace_ == nullptr) trace_ = std::make_unique<obs::TraceRing>(capacity);
}

template <typename Engine>
void BasicDiscoverySession<Engine>::RecordStep(uint8_t kind, EntityId entity,
                                               size_t candidates_before,
                                               uint64_t total_ns,
                                               const obs::PhaseAccum& accum) {
  if (obs::Enabled()) {
    if (step_hist_ != nullptr) step_hist_->Record(total_ns);
    obs::RecordStepPhases(accum);
    StepsCounter(kind)->Add(1);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.step = step_index_;
    ev.entity = entity;
    ev.kind = kind;
    ev.serve_path = accum.serve_path;
    ev.candidates_before = static_cast<uint32_t>(candidates_before);
    ev.candidates_after = static_cast<uint32_t>(candidates_.size());
    for (size_t i = 0; i < obs::kNumPhases; ++i) ev.phase_ns[i] = accum.ns[i];
    ev.total_ns = total_ns;
    trace_->Push(ev);
  }
  // Request-journey emission: when this step ran under a JourneyContext
  // (server pool job, bench harness), its span — with the phase breakdown
  // as child spans — goes into the process journey ring, parented to the
  // enclosing request span. EmitStepSpans also copies the totals back into
  // the context for the slow-step exemplar decision upstream.
  if (obs::JourneyEnabled()) {
    if (obs::JourneyContext* jc = obs::CurrentJourney()) {
      obs::EmitStepSpans(*jc, kind, step_index_, entity, total_ns, accum);
    }
  }
  ++step_index_;
}

template <typename Engine>
DiscoveryResult BasicDiscoverySession<Engine>::TakeResult() {
  SETDISC_CHECK_MSG(done(), "TakeResult on an unfinished session");
  return std::move(result_);
}

template class BasicDiscoverySession<UnshardedEngine>;
template class BasicDiscoverySession<ShardedEngine>;

}  // namespace setdisc
