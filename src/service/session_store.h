#pragma once

/// \file session_store.h
/// Crash-safe persistence of DiscoverySession resumable state.
///
/// A conversation's resumable state is tiny and fully replayable: the
/// initial examples, the discovery options, the selector it runs, and the
/// ordered answer/verify events. Replaying those events through a fresh
/// engine reproduces the exact candidate state, exclusion mask, and
/// transcript — BasicDiscoverySession is deterministic by construction — so
/// the store persists the *inputs* of a session, not its derived state.
/// That keeps records a few dozen bytes a step and makes rehydration
/// byte-parity with a never-evicted session testable (the parity suite
/// drives both and compares transcripts).
///
/// On-disk layout (inside `options.dir`):
///
///   sessions.ckpt   checkpoint: every live record, rewritten atomically
///                   (temp file + rename) by Checkpoint()
///   sessions.wal    write-ahead log: one framed record per Put/Erase since
///                   the last checkpoint, group-commit batched
///
/// Both files are sequences of CRC-framed records (durability.h); each
/// payload is [u8 wal_kind][body] where kind 1 = put (body = encoded
/// SessionRecord) and kind 2 = erase (body = u64 id). Replay applies the
/// checkpoint, then the WAL in order; a torn or CRC-failing tail — the
/// normal shape of a crash mid-append — is discarded, which loses at most
/// the last few un-flushed steps of some sessions. Clients re-answer those
/// questions on resume; with a deterministic oracle the transcript converges
/// to the uninterrupted one (crash_recovery_test asserts this).
///
/// Failure policy: persistence must never take serving down. An append or
/// checkpoint failure (ENOSPC, bad disk) marks the store degraded — puts
/// keep updating the in-memory map, WAL appends stop — and the next
/// successful Checkpoint() heals it (the checkpoint rewrites everything the
/// WAL missed). fsync is off by default: the crash model this tier defends
/// against is a killed *process* (SIGKILL, OOM), and written-but-unsynced
/// pages survive that in the page cache; machine-crash durability is one
/// `fsync = true` away for those who want it.
///
/// Thread safety: all public methods are safe to call concurrently; one
/// mutex serializes the map and the WAL tail. Callers (SessionManager)
/// already serialize per-session steps, so the store never sees two
/// concurrent puts of the same id with different orderings that matter.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "collection/types.h"
#include "core/discovery.h"
#include "obs/metrics.h"
#include "service/durability.h"
#include "util/status.h"

namespace setdisc {

/// One answered step of a conversation, as replayable input.
struct SessionEvent {
  /// 0 = SubmitAnswer (value is an Oracle::Answer), 1 = Verify (value is
  /// confirmed 0/1).
  uint8_t kind = 0;
  uint8_t value = 0;
  /// Effort level the step ran at (load-adaptive degradation): replay pins
  /// the selector to this level before re-applying the event, so a session
  /// degraded mid-conversation rehydrates byte-identically.
  uint8_t effort = 0;
};

inline constexpr uint8_t kEventAnswer = 0;
inline constexpr uint8_t kEventVerify = 1;

/// Everything needed to rebuild one session by replay.
struct SessionRecord {
  uint64_t id = 0;
  /// Session auth token (0 = none issued).
  uint64_t token = 0;
  /// Collection identity: SetCollection::Fingerprint() folded with the
  /// shard configuration (SessionManager computes it). Records whose
  /// fingerprint does not match the serving collection are dropped on
  /// replay — resuming a conversation over different data would silently
  /// answer wrong questions.
  uint64_t collection_fingerprint = 0;
  /// Selector the session runs; must match the manager's configured
  /// selector name for the record to rehydrate.
  std::string selector;
  DiscoveryOptions options;
  /// bit 0: session was created with enable_trace.
  uint8_t flags = 0;
  /// Effort level in force when the session was created — the first Select
  /// (inside the constructor) ran at it, so replay must pin it before
  /// rebuilding the session.
  uint8_t create_effort = 0;
  std::vector<EntityId> initial;
  std::vector<SessionEvent> events;

  bool trace_enabled() const { return (flags & 1) != 0; }
  void set_trace_enabled(bool on) {
    flags = static_cast<uint8_t>(on ? (flags | 1) : (flags & ~1u));
  }
};

/// Serializes `record` (versioned, little-endian; durability.h header
/// comment has the conventions) onto `out`.
void EncodeSessionRecord(const SessionRecord& record, std::string* out);

/// Decodes a serialized SessionRecord; false on truncation, trailing
/// garbage, an unknown version, or implausible lengths.
bool DecodeSessionRecord(std::string_view data, SessionRecord* out);

struct SessionStoreOptions {
  /// Directory holding sessions.ckpt / sessions.wal; created if missing.
  std::string dir;

  /// Group commit: WAL appends are flushed once this many records are
  /// pending (1 = every Put/Erase hits the file immediately). Unflushed
  /// records live only in memory and are lost by a crash — bounded,
  /// documented staleness traded for fewer write() calls per step.
  size_t wal_batch_records = 1;

  /// fsync the WAL after every flush and the checkpoint after every write.
  /// Off by default — see the failure-policy note in the file comment.
  bool fsync = false;

  /// Filesystem seam; nullptr = the real one. Tests inject a FaultFs.
  StoreFs* fs = nullptr;

  /// Replay refuses single records larger than this (a garbage length field
  /// must not drive a giant allocation).
  size_t max_record_bytes = size_t{1} << 26;
};

/// Counters, readable at any time (snapshot under the store mutex).
struct SessionStoreStats {
  uint64_t puts = 0;
  uint64_t erases = 0;
  uint64_t wal_flushes = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints = 0;
  uint64_t io_errors = 0;
  /// Replay: records applied, records dropped (decode failure or
  /// collection-fingerprint mismatch), and torn-tail bytes discarded.
  uint64_t replayed = 0;
  uint64_t dropped = 0;
  uint64_t torn_bytes = 0;
};

/// The WAL + checkpoint store. Construct, Open() once, then Put/Erase/Get
/// freely from any thread.
class SessionStore {
 public:
  explicit SessionStore(SessionStoreOptions options);
  ~SessionStore();

  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// Loads the checkpoint and replays the WAL, dropping records of other
  /// collections and any torn tail, then compacts (checkpoint + WAL
  /// truncate) so a crash loop cannot grow the WAL without bound. Returns
  /// non-OK only when the directory cannot be created — unreadable or
  /// missing files replay as empty (first boot looks exactly like a lost
  /// disk, and serving must start either way).
  Status Open(uint64_t collection_fingerprint);

  /// Upserts one session record (in memory immediately; WAL-appended per
  /// the batching policy). Returns false when the store is degraded and the
  /// record reached memory only.
  bool Put(const SessionRecord& record);

  /// Removes a session record (tombstoned in the WAL).
  void Erase(uint64_t id);

  /// Copies the record for `id` into `*out`; false if absent.
  bool Get(uint64_t id, SessionRecord* out) const;

  bool Contains(uint64_t id) const;

  /// Ids of every live record, unordered (restart scan).
  std::vector<uint64_t> Ids() const;

  /// Flushes pending WAL records to the file now.
  Status Flush();

  /// Rewrites the checkpoint atomically from the in-memory map, truncates
  /// the WAL, and clears the degraded flag on success.
  Status Checkpoint();

  /// Largest session id ever seen (puts + replay, including dropped
  /// records) — the manager seeds its id counter past this so a restart
  /// never reissues a persisted id.
  uint64_t max_id() const;

  size_t size() const;
  bool degraded() const;
  SessionStoreStats stats() const;

  const std::string& dir() const { return options_.dir; }
  std::string WalPath() const { return options_.dir + "/sessions.wal"; }
  std::string CheckpointPath() const { return options_.dir + "/sessions.ckpt"; }

 private:
  /// Applies one framed payload ([wal_kind][body]) during replay.
  void ReplayPayload(std::string_view payload);
  /// Frames [kind][body] into the pending batch and flushes it when the
  /// batch bound is reached. Requires mu_.
  void AppendWalLocked(uint8_t kind, std::string_view body);
  Status FlushLocked();
  Status CheckpointLocked();

  SessionStoreOptions options_;
  StoreFs* fs_;
  uint64_t collection_fp_ = 0;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::string> records_;  // id -> encoded record
  std::string pending_;
  size_t pending_records_ = 0;
  std::unique_ptr<WritableFile> wal_;
  uint64_t max_id_ = 0;
  bool degraded_ = false;
  bool open_ = false;
  SessionStoreStats stats_;

  /// Process-wide durability counters (null when obs was disabled at
  /// construction); mirrors of the per-store stats_ fields.
  obs::Counter* wal_records_counter_ = nullptr;
  obs::Counter* wal_bytes_counter_ = nullptr;
  obs::Counter* checkpoints_counter_ = nullptr;
  obs::Counter* io_errors_counter_ = nullptr;
};

}  // namespace setdisc
