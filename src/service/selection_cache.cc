#include "service/selection_cache.h"

#include <algorithm>

#include "util/status.h"

namespace setdisc {

namespace {

size_t RoundUpPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

SelectionCache::SelectionCache(SelectionCacheOptions options) {
  skip_singleton_exclusions_ = options.skip_singleton_exclusions;
  num_shards_ = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  capacity_per_shard_ =
      std::max<size_t>(1, (std::max<size_t>(1, options.capacity) +
                           num_shards_ - 1) /
                              num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  int bits = 0;
  while ((size_t{1} << bits) < num_shards_) ++bits;
  shard_shift_ = 64 - bits;
  if (options.metrics != nullptr) {
    probe_ = options.metrics->AddProbe([this](obs::SampleSink& sink) {
      const SelectionCacheStats s = stats();
      sink.Counter("setdisc_selection_cache_lookups_total", s.lookups);
      sink.Counter("setdisc_selection_cache_hits_total", s.hits);
      sink.Counter("setdisc_selection_cache_misses_total", s.misses);
      sink.Counter("setdisc_selection_cache_insertions_total", s.insertions);
      sink.Counter("setdisc_selection_cache_evictions_total", s.evictions);
      sink.Counter("setdisc_selection_cache_bypasses_total", s.bypasses);
      sink.Gauge("setdisc_selection_cache_size",
                 static_cast<int64_t>(size()));
    });
  }
}

uint64_t SelectionCache::HashKey(const SelectionKey& key) {
  uint64_t h = FingerprintAppend(kFingerprintSeed, key.collection_fingerprint);
  h = FingerprintAppend(h, key.sub_fingerprint);
  h = FingerprintAppend(h, key.exclusion_fingerprint);
  h = FingerprintAppend(h, key.selector_tag);
  return h;
}

SelectionCache::Shard& SelectionCache::ShardFor(const SelectionKey& key) {
  // Top bits pick the shard; unordered_map consumes the low bits, so one
  // hash serves both without correlation.
  uint64_t h = HashKey(key);
  size_t index = shard_shift_ >= 64 ? 0 : static_cast<size_t>(h >> shard_shift_);
  return shards_[index];
}

bool SelectionCache::Lookup(const SelectionKey& key, EntityId* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  Slot& slot = shard.slots[it->second];
  slot.referenced = true;  // second chance for the CLOCK sweep
  if (out != nullptr) *out = slot.value;
  return true;
}

void SelectionCache::Insert(const SelectionKey& key, EntityId value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.insertions;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Slot& slot = shard.slots[it->second];
    slot.value = value;
    slot.referenced = true;
    return;
  }
  size_t slot_index;
  if (shard.slots.size() < capacity_per_shard_) {
    slot_index = shard.slots.size();
    shard.slots.emplace_back();
  } else {
    // CLOCK sweep: clear reference bits until an unreferenced victim turns
    // up. Terminates within two revolutions even if everything was
    // referenced.
    for (;;) {
      Slot& candidate = shard.slots[shard.hand];
      if (candidate.referenced) {
        candidate.referenced = false;
        shard.hand = (shard.hand + 1) % shard.slots.size();
      } else {
        slot_index = shard.hand;
        shard.hand = (shard.hand + 1) % shard.slots.size();
        break;
      }
    }
    shard.index.erase(shard.slots[slot_index].key);
    ++shard.evictions;
  }
  Slot& slot = shard.slots[slot_index];
  slot.key = key;
  slot.value = value;
  slot.referenced = true;
  shard.index.emplace(key, slot_index);
}

SelectionCacheStats SelectionCache::stats() const {
  SelectionCacheStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.lookups += shard.lookups;
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
  }
  total.bypasses = bypasses_.load(std::memory_order_relaxed);
  return total;
}

size_t SelectionCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.index.size();
  }
  return n;
}

namespace {

// Cache snapshot file: CRC-framed records (durability.h), each holding a
// bounded batch of entries — [u8 version][u32 n][n × (4×u64 key, u32
// value)]. Batching keeps a torn tail from discarding the whole file: replay
// keeps every intact batch.
constexpr uint8_t kCacheSnapshotVersion = 1;
constexpr size_t kEntriesPerRecord = 4096;

}  // namespace

Status SelectionCache::Save(const std::string& path, StoreFs* fs) const {
  if (fs == nullptr) fs = StoreFs::Real();
  std::string data;
  std::string payload;
  size_t in_payload = 0;
  auto flush_payload = [&] {
    if (in_payload == 0) return;
    std::string framed_payload;
    ByteWriter w(&framed_payload);
    w.PutU8(kCacheSnapshotVersion);
    w.PutU32(static_cast<uint32_t>(in_payload));
    framed_payload.append(payload);
    AppendRecord(&data, framed_payload);
    payload.clear();
    in_payload = 0;
  };
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, slot_index] : shard.index) {
      ByteWriter w(&payload);
      w.PutU64(key.collection_fingerprint);
      w.PutU64(key.sub_fingerprint);
      w.PutU64(key.exclusion_fingerprint);
      w.PutU64(key.selector_tag);
      w.PutU32(shard.slots[slot_index].value);
      if (++in_payload >= kEntriesPerRecord) flush_payload();
    }
  }
  flush_payload();
  return fs->WriteFileAtomic(path, data, /*sync=*/false);
}

Result<size_t> SelectionCache::Load(const std::string& path, StoreFs* fs) {
  if (fs == nullptr) fs = StoreFs::Real();
  if (!fs->FileExists(path)) return size_t{0};
  Result<std::string> data = fs->ReadFile(path);
  if (!data.ok()) return data.status();
  size_t loaded = 0;
  ScanRecords(data.value(), [&](std::string_view record) {
    ByteReader r(record);
    uint8_t version = 0;
    uint32_t n = 0;
    if (!r.GetU8(&version) || version != kCacheSnapshotVersion ||
        !r.GetU32(&n)) {
      return;
    }
    for (uint32_t i = 0; i < n; ++i) {
      SelectionKey key;
      EntityId value = kNoEntity;
      if (!r.GetU64(&key.collection_fingerprint) ||
          !r.GetU64(&key.sub_fingerprint) ||
          !r.GetU64(&key.exclusion_fingerprint) ||
          !r.GetU64(&key.selector_tag) || !r.GetU32(&value)) {
        return;  // malformed interior; keep what decoded so far
      }
      Insert(key, value);
      ++loaded;
    }
  });
  return loaded;
}

void SelectionCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.slots.clear();
    shard.hand = 0;
  }
}

}  // namespace setdisc
