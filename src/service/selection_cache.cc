#include "service/selection_cache.h"

#include <algorithm>

#include "util/status.h"

namespace setdisc {

namespace {

size_t RoundUpPow2(size_t x) {
  size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

SelectionCache::SelectionCache(SelectionCacheOptions options) {
  skip_singleton_exclusions_ = options.skip_singleton_exclusions;
  num_shards_ = RoundUpPow2(std::max<size_t>(1, options.num_shards));
  capacity_per_shard_ =
      std::max<size_t>(1, (std::max<size_t>(1, options.capacity) +
                           num_shards_ - 1) /
                              num_shards_);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  int bits = 0;
  while ((size_t{1} << bits) < num_shards_) ++bits;
  shard_shift_ = 64 - bits;
  if (options.metrics != nullptr) {
    probe_ = options.metrics->AddProbe([this](obs::SampleSink& sink) {
      const SelectionCacheStats s = stats();
      sink.Counter("setdisc_selection_cache_lookups_total", s.lookups);
      sink.Counter("setdisc_selection_cache_hits_total", s.hits);
      sink.Counter("setdisc_selection_cache_misses_total", s.misses);
      sink.Counter("setdisc_selection_cache_insertions_total", s.insertions);
      sink.Counter("setdisc_selection_cache_evictions_total", s.evictions);
      sink.Counter("setdisc_selection_cache_bypasses_total", s.bypasses);
      sink.Gauge("setdisc_selection_cache_size",
                 static_cast<int64_t>(size()));
    });
  }
}

uint64_t SelectionCache::HashKey(const SelectionKey& key) {
  uint64_t h = FingerprintAppend(kFingerprintSeed, key.collection_fingerprint);
  h = FingerprintAppend(h, key.sub_fingerprint);
  h = FingerprintAppend(h, key.exclusion_fingerprint);
  h = FingerprintAppend(h, key.selector_tag);
  return h;
}

SelectionCache::Shard& SelectionCache::ShardFor(const SelectionKey& key) {
  // Top bits pick the shard; unordered_map consumes the low bits, so one
  // hash serves both without correlation.
  uint64_t h = HashKey(key);
  size_t index = shard_shift_ >= 64 ? 0 : static_cast<size_t>(h >> shard_shift_);
  return shards_[index];
}

bool SelectionCache::Lookup(const SelectionKey& key, EntityId* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lookups;
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  Slot& slot = shard.slots[it->second];
  slot.referenced = true;  // second chance for the CLOCK sweep
  if (out != nullptr) *out = slot.value;
  return true;
}

void SelectionCache::Insert(const SelectionKey& key, EntityId value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.insertions;
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Slot& slot = shard.slots[it->second];
    slot.value = value;
    slot.referenced = true;
    return;
  }
  size_t slot_index;
  if (shard.slots.size() < capacity_per_shard_) {
    slot_index = shard.slots.size();
    shard.slots.emplace_back();
  } else {
    // CLOCK sweep: clear reference bits until an unreferenced victim turns
    // up. Terminates within two revolutions even if everything was
    // referenced.
    for (;;) {
      Slot& candidate = shard.slots[shard.hand];
      if (candidate.referenced) {
        candidate.referenced = false;
        shard.hand = (shard.hand + 1) % shard.slots.size();
      } else {
        slot_index = shard.hand;
        shard.hand = (shard.hand + 1) % shard.slots.size();
        break;
      }
    }
    shard.index.erase(shard.slots[slot_index].key);
    ++shard.evictions;
  }
  Slot& slot = shard.slots[slot_index];
  slot.key = key;
  slot.value = value;
  slot.referenced = true;
  shard.index.emplace(key, slot_index);
}

SelectionCacheStats SelectionCache::stats() const {
  SelectionCacheStats total;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    total.lookups += shard.lookups;
    total.hits += shard.hits;
    total.misses += shard.misses;
    total.insertions += shard.insertions;
    total.evictions += shard.evictions;
  }
  total.bypasses = bypasses_.load(std::memory_order_relaxed);
  return total;
}

size_t SelectionCache::size() const {
  size_t n = 0;
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.index.size();
  }
  return n;
}

void SelectionCache::Clear() {
  for (size_t i = 0; i < num_shards_; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.index.clear();
    shard.slots.clear();
    shard.hand = 0;
  }
}

}  // namespace setdisc
