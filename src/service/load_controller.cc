#include "service/load_controller.h"

#include <utility>

#include "obs/event_log.h"

namespace setdisc {

LoadController::LoadController(LoadControllerOptions options,
                               MetricsSource source, DepthSource depth,
                               const Clock* clock)
    : options_(options),
      source_(std::move(source)),
      depth_(std::move(depth)),
      clock_(clock != nullptr ? clock : Clock::Real()) {
  if (options_.admit_queue_watermark > 0 && options_.admit_resume_depth == 0) {
    options_.admit_resume_depth = options_.admit_queue_watermark / 2;
  }
  if (options_.metrics != nullptr) {
    // The probe reads only this object's atomics — never back into the
    // registry — per the AddProbe contract. probe_ releases (blocking on
    // in-flight snapshots) before the atomics die.
    probe_ = options_.metrics->AddProbe([this](obs::SampleSink& sink) {
      sink.Gauge("setdisc_load_effort_level", effort_level());
      sink.Gauge("setdisc_load_admitting", admitting() ? 1 : 0);
      sink.Counter("setdisc_load_rejected_total", rejected_total());
      sink.Counter("setdisc_load_degrade_total", degrade_total());
      sink.Counter("setdisc_load_recover_total", recover_total());
      sink.Counter("setdisc_load_pressure_reaped_total",
                   pressure_reaped_total());
    });
  }
}

LoadController::~LoadController() {
  Stop();
  probe_.Release();
}

void LoadController::Start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { RunLoop(); });
}

void LoadController::Stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    running_ = false;
  }
}

void LoadController::RunLoop() {
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_) {
    // Real-time cadence for the production thread; the injected clock still
    // gates MaybeTick so a FakeClock test never races this loop (it simply
    // never advances the clock, so the loop's ticks all no-op).
    run_cv_.wait_for(lock, options_.tick_interval, [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    MaybeTick();
    lock.lock();
  }
}

bool LoadController::MaybeTick() {
  {
    std::lock_guard<std::mutex> lock(tick_mu_);
    if (have_last_tick_ &&
        clock_->Now() - last_tick_ < options_.tick_interval) {
      return false;
    }
  }
  Tick();
  return true;
}

obs::HistogramSnapshot LoadController::WindowDelta(
    const obs::HistogramSnapshot& cur, const obs::HistogramSnapshot& prev) {
  obs::HistogramSnapshot out;
  out.count = cur.count >= prev.count ? cur.count - prev.count : 0;
  out.sum = cur.sum >= prev.sum ? cur.sum - prev.sum : 0;
  out.buckets.resize(cur.buckets.size(), 0);
  for (size_t i = 0; i < cur.buckets.size(); ++i) {
    uint64_t p = i < prev.buckets.size() ? prev.buckets[i] : 0;
    out.buckets[i] = cur.buckets[i] >= p ? cur.buckets[i] - p : 0;
  }
  return out;
}

void LoadController::Tick() {
  LoadSample sample = source_ ? source_() : LoadSample{};

  std::lock_guard<std::mutex> lock(tick_mu_);
  last_tick_ = clock_->Now();
  have_last_tick_ = true;

  bool under_pressure =
      !admitting_.load(std::memory_order_relaxed) ||
      effort_level_.load(std::memory_order_relaxed) > 0;

  if (options_.target_p99_ns > 0) {
    obs::HistogramSnapshot window =
        have_prev_ ? WindowDelta(sample.step_latency, prev_latency_)
                   : sample.step_latency;
    prev_latency_ = std::move(sample.step_latency);
    have_prev_ = true;

    if (window.count >= options_.min_window_count) {
      const uint64_t p99 = window.ValueAtQuantile(0.99);
      last_p99_.store(p99, std::memory_order_relaxed);
      if (p99 > options_.target_p99_ns) {
        ++over_ticks_;
        under_ticks_ = 0;
      } else if (static_cast<double>(p99) <
                 options_.recover_fraction *
                     static_cast<double>(options_.target_p99_ns)) {
        ++under_ticks_;
        over_ticks_ = 0;
      } else {
        // Dead band: noisy p99 hovering near the target moves neither
        // counter, so the ladder holds still instead of oscillating.
        over_ticks_ = 0;
        under_ticks_ = 0;
      }
    } else {
      // No traffic, no signal — an idle window argues for re-widening.
      last_p99_.store(0, std::memory_order_relaxed);
      ++under_ticks_;
      over_ticks_ = 0;
    }

    int level = effort_level_.load(std::memory_order_relaxed);
    if (over_ticks_ >= options_.degrade_after_ticks &&
        level < options_.max_effort_level) {
      effort_level_.store(level + 1, std::memory_order_relaxed);
      degrades_.fetch_add(1, std::memory_order_relaxed);
      over_ticks_ = 0;
      under_pressure = true;
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kEffortDegrade, level, level + 1);
      if (effort_sink_) effort_sink_(level + 1);
    } else if (under_ticks_ >= options_.recover_after_ticks && level > 0) {
      effort_level_.store(level - 1, std::memory_order_relaxed);
      recovers_.fetch_add(1, std::memory_order_relaxed);
      under_ticks_ = 0;
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kEffortRecover, level, level - 1);
      if (effort_sink_) effort_sink_(level - 1);
    }
  }

  // Queue standing above the watermark is pressure even before any refusal
  // has flipped the admission gate (the gate flips lazily, on the next
  // AdmitCreate).
  if (options_.admit_queue_watermark > 0 &&
      sample.queue_depth >= options_.admit_queue_watermark) {
    under_pressure = true;
  }

  if (under_pressure && options_.pressure_idle_ttl.count() > 0 && reaper_) {
    size_t reaped = reaper_(options_.pressure_idle_ttl);
    if (reaped > 0) {
      pressure_reaped_.fetch_add(reaped, std::memory_order_relaxed);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kPressureReap, static_cast<int64_t>(reaped),
          options_.pressure_idle_ttl.count());
    }
  }
}

bool LoadController::AdmitCreate(uint32_t* retry_after_ms) {
  if (options_.admit_queue_watermark == 0 || !depth_) return true;
  const size_t depth = depth_();
  bool open;
  {
    std::lock_guard<std::mutex> lock(admit_mu_);
    open = admitting_.load(std::memory_order_relaxed);
    if (open) {
      if (depth >= options_.admit_queue_watermark) {
        open = false;
        admitting_.store(false, std::memory_order_relaxed);
        obs::FlightRecorder::Global().Record(
            obs::FlightEventKind::kAdmissionClosed,
            static_cast<int64_t>(depth),
            static_cast<int64_t>(options_.admit_queue_watermark));
      }
    } else if (depth <= options_.admit_resume_depth) {
      open = true;
      admitting_.store(true, std::memory_order_relaxed);
      obs::FlightRecorder::Global().Record(
          obs::FlightEventKind::kAdmissionResumed, static_cast<int64_t>(depth),
          static_cast<int64_t>(options_.admit_resume_depth));
    }
  }
  if (!open) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    obs::FlightRecorder::Global().Record(
        obs::FlightEventKind::kAdmissionReject, static_cast<int64_t>(depth));
    if (retry_after_ms != nullptr) *retry_after_ms = options_.retry_after_ms;
    return false;
  }
  return true;
}

}  // namespace setdisc
