#pragma once

/// \file durability.h
/// Foundations of the durability tier: a tiny injectable filesystem seam
/// (StoreFs), its fault-injecting test double (FaultFs), and the CRC-framed
/// record format the SessionStore builds its write-ahead log and checkpoint
/// files from.
///
/// Why a seam at all: the store's correctness claims are about what survives
/// *partial* I/O — a write() cut short by ENOSPC, an fsync that fails, a
/// process killed between two appends. Real filesystems produce those states
/// rarely and non-deterministically; FaultFs produces them on demand (short
/// writes at an exact byte budget, failing syncs, failing renames), so
/// tests/session_store_test.cc can walk every torn-tail shape instead of
/// hoping to hit one.
///
/// Record framing. Both store files are sequences of
///
///   offset 0  uint32  payload length in bytes
///   offset 4  uint32  CRC-32 (IEEE, reflected) of the payload
///   offset 8  payload[length]
///
/// all little-endian, matching the net/protocol.h conventions. A reader
/// accepts the longest prefix of intact records and stops at the first
/// truncated or CRC-failing one — a torn tail is the expected shape of a
/// crash mid-append, not corruption worth refusing the whole file over.
///
/// ByteWriter / ByteReader restate the PayloadWriter / PayloadReader
/// little-endian encoding conventions from net/protocol.h. They are
/// deliberately a separate pair: protocol.h includes the service layer
/// (SessionView), so the service layer including it back would be a cycle.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace setdisc {

// ---------------------------------------------------------------------------
// Little-endian encoding primitives (net/protocol.h conventions)
// ---------------------------------------------------------------------------

/// Appends little-endian primitives to a byte buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) {
    PutU8(static_cast<uint8_t>(v));
    PutU8(static_cast<uint8_t>(v >> 8));
  }
  void PutU32(uint32_t v) {
    PutU16(static_cast<uint16_t>(v));
    PutU16(static_cast<uint16_t>(v >> 16));
  }
  void PutU64(uint64_t v) {
    PutU32(static_cast<uint32_t>(v));
    PutU32(static_cast<uint32_t>(v >> 32));
  }
  void PutBytes(std::string_view bytes) { out_->append(bytes); }
  /// u16 length prefix + bytes (lengths past 64 KiB are a caller bug).
  void PutString(std::string_view s) {
    PutU16(static_cast<uint16_t>(s.size()));
    PutBytes(s);
  }

 private:
  std::string* out_;
};

/// Bounds-checked little-endian reads; any out-of-bounds read trips ok()
/// permanently, so decoding truncated input is safe and branch-light.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v) {
    if (!Ensure(1)) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }
  bool GetU16(uint16_t* v) {
    uint8_t lo, hi;
    if (!GetU8(&lo) || !GetU8(&hi)) return false;
    *v = static_cast<uint16_t>(lo | (uint16_t{hi} << 8));
    return true;
  }
  bool GetU32(uint32_t* v) {
    uint16_t lo, hi;
    if (!GetU16(&lo) || !GetU16(&hi)) return false;
    *v = lo | (uint32_t{hi} << 16);
    return true;
  }
  bool GetU64(uint64_t* v) {
    uint32_t lo, hi;
    if (!GetU32(&lo) || !GetU32(&hi)) return false;
    *v = lo | (uint64_t{hi} << 32);
    return true;
  }
  bool GetBytes(size_t n, std::string_view* out) {
    if (!Ensure(n)) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }
  bool GetString(std::string* out) {
    uint16_t len = 0;
    std::string_view bytes;
    if (!GetU16(&len) || !GetBytes(len, &bytes)) return false;
    out->assign(bytes);
    return true;
  }

  bool ok() const { return ok_; }
  size_t remaining() const { return data_.size() - pos_; }
  bool Exhausted() const { return ok_ && pos_ == data_.size(); }

 private:
  bool Ensure(size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// CRC-framed records
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3 polynomial, reflected), the classic table-driven form.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Frames `payload` as one record ([u32 len][u32 crc][payload]) onto `out`.
void AppendRecord(std::string* out, std::string_view payload);

/// Outcome of scanning a record file (see ScanRecords).
struct RecordScan {
  size_t records = 0;      ///< intact records delivered to the callback
  size_t valid_bytes = 0;  ///< bytes of the intact prefix
  bool torn_tail = false;  ///< bytes remained after the last intact record
};

/// Walks the intact record prefix of `data`, invoking `fn` per payload, and
/// stops at the first truncated or CRC-failing record. A record whose length
/// field exceeds `max_payload` also stops the scan (a garbage length must
/// not drive a huge substr).
RecordScan ScanRecords(std::string_view data,
                       const std::function<void(std::string_view)>& fn,
                       size_t max_payload = size_t{1} << 26);

// ---------------------------------------------------------------------------
// Filesystem seam
// ---------------------------------------------------------------------------

/// An open append-only file (the write-ahead log holds one across appends so
/// group-committed batches don't pay an open/close per flush).
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
};

/// The few filesystem operations the durability tier needs, virtual so tests
/// inject faults. Implementations must be safe for concurrent use from
/// multiple threads on distinct files; the store serializes per-file access
/// itself.
class StoreFs {
 public:
  virtual ~StoreFs() = default;

  /// Reads a whole file; IoError when it cannot be opened.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Opens (creating if needed) a file for appending.
  virtual Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) = 0;

  /// Writes `data` to `path` atomically: a temp file in the same directory,
  /// optionally fsynced, then rename(2)d over the target — readers see the
  /// old bytes or the new bytes, never a mix.
  virtual Status WriteFileAtomic(const std::string& path, std::string_view data,
                                 bool sync) = 0;

  virtual Status Remove(const std::string& path) = 0;
  virtual Status Truncate(const std::string& path) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status CreateDir(const std::string& path) = 0;

  /// The process-wide POSIX implementation. Never null, never freed.
  static StoreFs* Real();
};

/// Fault-injecting StoreFs decorator. All knobs are atomics so a test can
/// flip them while the store runs on another thread; byte budgets are shared
/// across every file opened through this instance.
class FaultFs : public StoreFs {
 public:
  explicit FaultFs(StoreFs* base = nullptr)
      : base_(base != nullptr ? base : StoreFs::Real()) {}

  /// After `n` more appended bytes (across all files), appends write only
  /// what remains of the budget — a genuinely torn record — and then fail
  /// like ENOSPC. Negative disables (the default).
  void FailAppendsAfterBytes(int64_t n) {
    append_budget_.store(n, std::memory_order_relaxed);
  }

  /// Every Sync() fails while set.
  void set_fail_sync(bool fail) {
    fail_sync_.store(fail, std::memory_order_relaxed);
  }

  /// Every WriteFileAtomic() fails (before the rename) while set.
  void set_fail_atomic_write(bool fail) {
    fail_atomic_write_.store(fail, std::memory_order_relaxed);
  }

  /// Crash-point hook: invoked before every append with the running append
  /// ordinal (1-based); returning false makes the append fail having written
  /// nothing — "the process died here". nullptr disables.
  void set_crash_hook(std::function<bool(uint64_t)> hook) {
    crash_hook_ = std::move(hook);
  }

  uint64_t appends() const { return appends_.load(std::memory_order_relaxed); }
  uint64_t syncs() const { return syncs_.load(std::memory_order_relaxed); }
  uint64_t appended_bytes() const {
    return appended_bytes_.load(std::memory_order_relaxed);
  }

  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> OpenAppendable(
      const std::string& path) override;
  Status WriteFileAtomic(const std::string& path, std::string_view data,
                         bool sync) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path) override;
  bool FileExists(const std::string& path) override;
  Status CreateDir(const std::string& path) override;

 private:
  class FaultyFile;

  StoreFs* base_;
  std::atomic<int64_t> append_budget_{-1};
  std::atomic<bool> fail_sync_{false};
  std::atomic<bool> fail_atomic_write_{false};
  std::function<bool(uint64_t)> crash_hook_;
  std::atomic<uint64_t> appends_{0};
  std::atomic<uint64_t> syncs_{0};
  std::atomic<uint64_t> appended_bytes_{0};
};

}  // namespace setdisc
