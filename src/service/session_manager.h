#pragma once

/// \file session_manager.h
/// Thread-safe registry of concurrent DiscoverySessions.
///
/// One SessionManager serves many simultaneous interactive conversations
/// over a single shared, immutable SetCollection + InvertedIndex:
///
///   * sessions get monotonically increasing ids (never reused);
///   * every session owns a private selector instance (selectors are
///     documented non-thread-safe — they hold scratch buffers and caches);
///   * a per-session mutex serializes steps of one conversation while steps
///     of different conversations run in parallel;
///   * idle sessions are reaped after a TTL — by a background reaper tick,
///     off the Create critical path — and a capacity bound evicts the least
///     recently used session when the registry is full;
///   * an internal ThreadPool runs independent sessions' Select() calls
///     concurrently (SubmitAnswerAsync), since selection is the CPU cost of
///     a step;
///   * with `options.num_shards > 1` the manager builds a ShardedCollection
///     over the input at construction and every session runs the sharded
///     engine: the per-step counting pass fans out across the same pool via
///     ThreadPool::ParallelFor and merges (collection/sharded_collection.h)
///     — parallelism *within* a step on top of the parallelism *across*
///     sessions — with transcripts byte-identical to unsharded serving.
///
/// The network frontend lives one layer up: net/server.h loops an epoll
/// event loop around this engine and speaks the binary protocol of
/// net/protocol.h.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "collection/inverted_index.h"
#include "obs/journey.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "collection/set_collection.h"
#include "collection/sharded_collection.h"
#include "core/discovery.h"
#include "core/selector.h"
#include "core/sharded_selectors.h"
#include "service/discovery_session.h"
#include "service/selection_cache.h"
#include "service/session_store.h"
#include "util/clock.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace setdisc {

/// Monotonic session identifier; 0 is never issued.
using SessionId = uint64_t;
inline constexpr SessionId kNoSession = 0;

/// Snapshot of a session returned by every step. Copies (not references) so
/// it stays valid after the session is reaped or evicted.
struct SessionView {
  SessionId id = kNoSession;
  SessionState state = SessionState::kFinished;
  EntityId question = kNoEntity;  ///< pending entity in kAwaitingAnswer
  SetId verify_set = kNoSet;      ///< pending set in kAwaitingVerify
  int questions_asked = 0;
  /// Session auth token (0 = none issued): returned once by Create when the
  /// caller asked for one; later ops on the id must present it.
  uint64_t token = 0;
  /// Populated once state == kFinished.
  DiscoveryResult result;
};

/// What happened to a manager call that named a session id.
enum class SessionStatus {
  kOk,
  kNotFound,      ///< unknown, expired, or evicted id
  kWrongState,    ///< e.g. SubmitAnswer while kAwaitingVerify
};

/// Configuration of a SessionManager.
struct SessionManagerOptions {
  /// Discovery options applied to every session.
  DiscoveryOptions discovery;

  /// Factory producing one private selector per session. Must be set unless
  /// num_shards > 1 (sharded managers use sharded_selector_factory instead).
  std::function<std::unique_ptr<EntitySelector>()> selector_factory;

  /// Number of collection shards. 0 or 1 = unsharded (the input collection
  /// and index are used as-is). K > 1 builds a ShardedCollection at manager
  /// construction — K per-shard CSR collections + inverted indexes — and
  /// runs every session on the sharded engine. Transcripts are byte-equal
  /// either way; sharding buys intra-step parallelism on large collections
  /// and costs merge overhead on tiny ones (see tools/README.md).
  size_t num_shards = 1;

  /// How set ids map to shards when num_shards > 1.
  ShardScheme shard_scheme = ShardScheme::kRange;

  /// Factory producing one private sharded selector per session; required
  /// when num_shards > 1, ignored otherwise. The manager injects its pool
  /// into each instance (set_pool) after creation.
  std::function<std::unique_ptr<ShardedEntitySelector>()>
      sharded_selector_factory;

  /// Optional cross-session Select() memo. When set, every session's private
  /// selector is wrapped in a CachingSelector (or ShardedCachingSelector)
  /// pointing at this cache, so all sessions of this manager (and of any
  /// other manager given the same pointer) share one memo without sharing
  /// selectors. The cache must outlive the manager, and the factory must
  /// produce deterministic selectors (see selection_cache.h). Sharded and
  /// unsharded managers can safely share one cache: shard count and scheme
  /// are part of the key's collection-fingerprint component.
  SelectionCache* selection_cache = nullptr;

  /// Sessions idle longer than this are reaped (zero = never).
  std::chrono::milliseconds session_ttl{std::chrono::minutes(10)};

  /// Run TTL reaping on a background tick instead of the Create critical
  /// path. Reaping walks the expired LRU prefix under the registry mutex;
  /// at 100k+ sessions that walk is contention Create should not pay, so a
  /// dedicated reaper thread does it on a timer. When disabled (for
  /// deterministic tests, or to avoid the extra thread), Create reaps
  /// inline as before, and ReapExpired() remains callable by hand.
  bool background_reap = true;

  /// Tick period of the background reaper; zero derives it from the TTL
  /// (ttl / 4, clamped to [10ms, 1s]). Ignored when background_reap is
  /// false or the TTL is zero (no thread is started).
  std::chrono::milliseconds reap_interval{0};

  /// Shrink-on-idle: sessions idle longer than this have their selector's
  /// retained memory released (EntitySelector::ReleaseMemory — the
  /// differential-counting state, the dense counting scratch, and the k-LP
  /// memo), so 100k parked-but-live sessions don't pin O(universe) scratch
  /// each. The release runs on the background reaper tick (or inside
  /// ReapExpired() for manual reaping) and is purely a memory/latency
  /// trade: the next step pays one full recount, transcripts are
  /// unaffected. Zero disables. Should be < session_ttl to matter (expired
  /// sessions are destroyed outright).
  std::chrono::milliseconds release_scratch_after{0};

  /// Upper bound on live sessions; creating one past the bound evicts the
  /// least recently touched session (zero = unlimited).
  size_t max_sessions = 0;

  /// Worker threads for SubmitAnswerAsync and the sharded counting fan-out
  /// (zero = hardware concurrency).
  size_t num_threads = 0;

  /// Registry to publish manager-level gauges into (sessions active, total
  /// sessions created). The registry must outlive the manager. nullptr
  /// disables; per-step histograms and counters are unaffected — they go to
  /// MetricsRegistry::Default() whenever obs::Enabled(), regardless of this.
  obs::MetricsRegistry* metrics = nullptr;

  /// Capacity of the per-session trace ring for sessions created with
  /// enable_trace (Create's second argument). Oldest events are overwritten
  /// past this. Tracing is per-session opt-in; untraced sessions pay one
  /// null-pointer test per step.
  size_t trace_capacity = 256;

  /// Time source for TTL reaping, shrink-on-idle, and LRU stamping. nullptr
  /// = the real steady clock; tests inject a FakeClock (util/clock.h) so
  /// expiry assertions need no sleeps. Must outlive the manager.
  const Clock* clock = nullptr;

  /// Initial load-shedding effort level applied to new sessions (see
  /// EntitySelector::SetEffort; 0 = full effort). Live changes come through
  /// SetEffortLevel() — normally driven by a LoadController — and reach
  /// every session, including pre-existing ones, at its next step.
  int initial_effort_level = 0;

  /// Crash-safe session persistence (service/session_store.h). When set —
  /// Open()ed by the caller, outliving the manager — every step appends the
  /// session's replayable record to the store's WAL, LRU eviction and TTL
  /// reaping *spill* (drop memory, keep the record), and a miss on any
  /// session op consults the store and rehydrates by replaying the recorded
  /// events through a fresh engine (byte-parity with a never-evicted
  /// session; the selectors must be deterministic, same rule as the
  /// selection cache). The manager also seeds its id counter past
  /// store->max_id() so a restart never reissues a persisted id. nullptr =
  /// the old RAM-only behavior.
  SessionStore* session_store = nullptr;
};

/// The serving engine: create / step / verify / reap, all thread-safe.
class SessionManager {
 public:
  /// The collection and index must outlive the manager and are shared
  /// read-only across all sessions. The selector factory matching
  /// `options.num_shards` must be set.
  SessionManager(const SetCollection& collection, const InvertedIndex& index,
                 SessionManagerOptions options);

  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session seeded with the initial example entities and runs the
  /// first selection. Reaps expired sessions and, if at capacity, evicts the
  /// least recently touched one.
  ///
  /// A session can finish at birth (no set matches `initial`, or a single
  /// one remains with verification off): the returned view is already
  /// kFinished and carries the full result, and the session is NOT
  /// registered — its id is issued but Get/Close on it return kNotFound.
  /// With enable_trace, the session records a bounded ring of per-step
  /// TraceEvents (phase latencies, serve path, candidate narrowing),
  /// readable via GetTrace. The creation step itself is not traced — the
  /// ring is attached right after the first Select() — so event 0 is the
  /// first answer.
  ///
  /// `journey_trace` is the request-journey trace id stored with the
  /// session (obs/journey.h): later steps running under a JourneyContext
  /// that arrived without an id (Answer/Verify don't carry one on the wire)
  /// inherit it, so a whole conversation's spans share one trace. Invalid
  /// (the default) stores nothing.
  /// With `issue_token`, the session is protected by a random nonzero
  /// 64-bit token (returned in the view); every later op on the id must
  /// present it or gets kNotFound — same answer as a nonexistent id, so
  /// token failures leak nothing about which ids are live.
  SessionView Create(std::span<const EntityId> initial,
                     bool enable_trace = false,
                     obs::TraceId journey_trace = {},
                     bool issue_token = false);

  /// Current snapshot of a session (also refreshes its TTL).
  SessionStatus Get(SessionId id, SessionView* view, uint64_t token = 0);

  /// Answers the pending question of session `id` and advances it to the
  /// next question, a verification, or completion.
  SessionStatus SubmitAnswer(SessionId id, Oracle::Answer answer,
                             SessionView* view, uint64_t token = 0);

  /// Resolves the pending verification of session `id`.
  SessionStatus Verify(SessionId id, bool confirmed, SessionView* view,
                       uint64_t token = 0);

  /// Copies the trace ring of session `id` into `*out`, oldest first.
  /// kWrongState if the session is live but was created without
  /// enable_trace.
  SessionStatus GetTrace(SessionId id, std::vector<obs::TraceEvent>* out,
                         uint64_t token = 0);

  /// SubmitAnswer on the manager's thread pool: the re-selection (the CPU
  /// cost of a step) runs concurrently with other sessions' steps.
  std::future<std::pair<SessionStatus, SessionView>> SubmitAnswerAsync(
      SessionId id, Oracle::Answer answer, uint64_t token = 0);

  /// Drives session `view` to completion with synchronous steps, answering
  /// from `oracle`. Returns the final view; its state is kFinished unless
  /// the session vanished mid-flight (expired/evicted/closed). Safe to call
  /// from pool jobs — it never blocks on a future.
  SessionView Drive(SessionView view, Oracle& oracle);

  /// Closes a session explicitly (and erases its store record, so a closed
  /// conversation cannot be resumed). Returns kNotFound if it wasn't live.
  SessionStatus Close(SessionId id, uint64_t token = 0);

  /// Drops every session idle longer than the TTL; returns how many. Also
  /// runs the shrink-on-idle pass when release_scratch_after is set.
  size_t ReapExpired();

  /// Load-aware eviction actuator: drops every session idle longer than
  /// `threshold` regardless of the configured TTL (the LoadController calls
  /// this with a much shorter leash while under pressure, so parked
  /// conversations return their memory and table slots to the active ones).
  /// Returns how many were reaped; no-op for a non-positive threshold.
  size_t ReapIdle(std::chrono::milliseconds threshold);

  /// Sets the process effort level for load-adaptive degradation. Every
  /// session re-reads it at step entry (DiscoveryEngine::SetEffortSource),
  /// so the change lands on the next step of every conversation. Normally
  /// written by a LoadController's effort sink; 0 restores full effort.
  void SetEffortLevel(int level) {
    effort_level_.store(level < 0 ? 0 : level, std::memory_order_relaxed);
  }
  int effort_level() const {
    return effort_level_.load(std::memory_order_relaxed);
  }

  /// Releases the retained selector memory of every session idle longer
  /// than `options.release_scratch_after` (no-op when that is zero);
  /// returns how many sessions were shrunk. Sessions mid-step are skipped
  /// (their entry mutex is only try_locked) and picked up next tick.
  /// Called by the reaper tick; public for deterministic tests.
  size_t ReleaseIdleScratch();

  /// Number of live sessions.
  size_t num_active() const;

  /// Total sessions ever created.
  uint64_t num_created() const;

  /// True when this manager runs the sharded engine (num_shards > 1).
  bool sharded() const { return sharded_ != nullptr; }

  /// The manager-owned sharded view of the collection; nullptr unless
  /// sharded(). Exposed for benches and tests.
  const ShardedCollection* sharded_collection() const {
    return sharded_.get();
  }

  /// The pool running SubmitAnswerAsync work — exposed so callers (benches,
  /// servers) can co-schedule whole-conversation jobs on the same workers.
  ///
  /// Deadlock hazard: a job running ON this pool must not block on a
  /// SubmitAnswerAsync future — with every worker occupied by such jobs, the
  /// async step tasks queue behind them forever. Pool jobs should use the
  /// synchronous SubmitAnswer/Verify/Drive (as the CLI stress mode and
  /// benches do); reserve SubmitAnswerAsync for callers outside the pool.
  /// (The sharded counting fan-out is exempt: ParallelFor callers execute
  /// their own items, so it cannot deadlock — see util/thread_pool.h.)
  ThreadPool& pool() { return *pool_; }

  /// The shared Select() memo, if one was configured; nullptr otherwise.
  /// Exposed so the stats surface (net/server.h) can report hit rates.
  SelectionCache* selection_cache() const { return options_.selection_cache; }

 private:
  /// A live session: its engine, its private selector (one of the two
  /// flavors), a mutex serializing the steps of this one conversation, and
  /// its node in the registry's LRU list (an iterator, so touch/evict/close
  /// are all O(1) splices).
  struct Entry {
    std::mutex mu;
    std::unique_ptr<EntitySelector> selector;
    std::unique_ptr<ShardedEntitySelector> sharded_selector;
    std::unique_ptr<DiscoveryEngine> session;
    Clock::time_point last_touched;
    std::list<SessionId>::iterator lru_it;
    /// Guarded by registry_mu_: set once the shrink-on-idle pass released
    /// this session's selector memory, cleared on every touch, so an idle
    /// session is released once per idle period, not once per reaper tick.
    bool scratch_released = false;
    /// Request-journey trace id this conversation was created under
    /// (invalid if none). Written once in Create, read-only afterwards.
    obs::TraceId journey_trace;
    /// Session auth token (0 = unprotected). Written once before
    /// publication, read-only afterwards.
    uint64_t token = 0;
    /// True once the session reached kFinished (written under mu, read by
    /// the eviction/reap paths that only hold registry_mu_ — hence atomic).
    std::atomic<bool> finished{false};
    /// The replayable journal persisted to the session store: creation
    /// inputs plus every applied event. Guarded by mu; empty/unused when no
    /// store is configured.
    SessionRecord record;
  };

  std::shared_ptr<Entry> Find(SessionId id);
  /// Find, falling back to store rehydration on a miss (no-op without a
  /// store). All session ops go through this.
  std::shared_ptr<Entry> FindOrRehydrate(SessionId id);
  /// Rebuilds a session from its store record by replaying the journal
  /// through a fresh engine; returns the registered entry, or nullptr when
  /// the record is missing, for another collection/selector, or fails to
  /// replay cleanly. Thread-safe; a racing rehydration of the same id
  /// resolves second-wins (the loser's rebuild is dropped).
  std::shared_ptr<Entry> Rehydrate(SessionId id);
  /// Builds a not-yet-registered entry: selector (cache-wrapped, effort
  /// pre-applied), session over `initial`, optional tracing. The creation
  /// Select runs here, outside any lock. Does NOT attach the live effort
  /// source — Create/Rehydrate do that once the entry's selector is at the
  /// right level.
  std::shared_ptr<Entry> NewEntry(std::span<const EntityId> initial,
                                  int effort, bool enable_trace);
  /// Journals one applied event and persists the record (store configured
  /// only). Requires the entry mutex.
  void JournalStepLocked(SessionId id, Entry& entry, uint8_t kind,
                         uint8_t value, uint8_t effort);
  size_t ReapExpiredLocked();  // requires registry_mu_
  /// Drops the LRU prefix last touched before `cutoff`; requires
  /// registry_mu_. Shared tail of TTL reaping and pressure eviction.
  size_t ReapOlderThanLocked(Clock::time_point cutoff);
  void ReaperLoop(std::chrono::milliseconds interval);
  static SessionView MakeView(SessionId id, const DiscoveryEngine& session,
                              uint64_t token = 0);

  const SetCollection& collection_;
  const InvertedIndex& index_;
  SessionManagerOptions options_;
  /// Injected time source (options_.clock, defaulted to the real clock).
  const Clock* clock_;
  /// Live degradation level; sessions point at this cell (it outlives them
  /// by construction) and re-read it at every step entry.
  std::atomic<int> effort_level_{0};
  std::unique_ptr<ShardedCollection> sharded_;  // only when num_shards > 1
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex registry_mu_;
  std::unordered_map<SessionId, std::shared_ptr<Entry>> sessions_;
  /// Live ids, least recently touched first. Every touch splices the
  /// session's node to the back, so the list order IS last_touched order:
  /// capacity eviction pops the front in O(1) (no min-scan) and TTL reaping
  /// only walks the expired prefix.
  std::list<SessionId> lru_;
  SessionId next_id_ = 1;
  uint64_t num_created_ = 0;

  /// Shortcut for options_.session_store (may be null).
  SessionStore* store_ = nullptr;
  /// Collection identity persisted in every record: the *content*
  /// fingerprint (SetCollection::Fingerprint()), deliberately not folded
  /// with the shard configuration — transcripts are byte-identical across
  /// shard counts, so a session spilled under K=4 legitimately resumes
  /// under K=1.
  uint64_t store_fp_ = 0;
  /// Token minting; guarded by registry_mu_, seeded from the OS entropy
  /// pool at construction.
  Rng token_rng_{0};
  /// Durability counters (null when obs was disabled at construction).
  obs::Counter* spilled_counter_ = nullptr;
  obs::Counter* resumed_counter_ = nullptr;
  obs::Counter* rehydrate_failed_counter_ = nullptr;

  // Background TTL reaper (only started when background_reap && ttl > 0).
  std::mutex reaper_mu_;
  std::condition_variable reaper_cv_;
  bool reaper_stop_ = false;
  std::thread reaper_;

  /// Registry probe publishing sessions_active / sessions_created; released
  /// explicitly at the top of the destructor, before anything it reads is
  /// torn down.
  obs::MetricsRegistry::ProbeHandle metrics_probe_;
};

}  // namespace setdisc
