#pragma once

/// \file selection_cache.h
/// Cross-session memo of Select() decisions (the ROADMAP's "result caching
/// across sessions" item).
///
/// Every new session over a warm collection starts from the same root
/// candidate set and — with a deterministic selector — recomputes the same
/// first questions; as sessions narrow, common answer prefixes keep
/// producing identical (candidate set, exclusion mask) states. The cache
/// memoizes the decision itself:
///
///   (collection fingerprint, candidate-set fingerprint,
///    exclusion-mask fingerprint, selector tag) -> chosen EntityId
///
/// so for a warm collection the first questions of a new session cost a hash
/// lookup instead of a full counting scan (bench_service measures the gap).
///
/// Concurrency model: the cache is fully thread-safe — sharded, one mutex
/// stripe per shard — which is exactly what lets many sessions share one
/// memo even though the selectors themselves stay per-session and
/// non-thread-safe. Sessions wrap their private selector in a
/// CachingSelector decorator pointing at the shared cache; the decorator
/// inherits the inner selector's single-thread contract, the cache behind it
/// does not.
///
/// Bounding: each shard runs CLOCK replacement (second-chance) over a
/// fixed-capacity slot array — O(1) amortized eviction, no list splicing on
/// the hit path (a hit only sets a reference bit). Hit / miss / insertion /
/// eviction counters are maintained under the shard mutexes, so after any
/// quiescent point `hits + misses == lookups` exactly (the stress suite
/// asserts this under TSan).
///
/// The collection fingerprint component makes sharing one cache across
/// managers over *different* collections safe: sub-collection fingerprints
/// hash dense per-collection set ids, which would otherwise collide between
/// any two collections (SubCollection::Full always has ids 0..n-1).
///
/// Caveats, enforced by the caller:
///  * only deterministic selectors may share a cache (RandomSelector must
///    not be wrapped — a memoized "random" pick replays the first draw);
///  * selectors are distinguished by EntitySelector::DecisionFingerprint()
///    (a name() hash by default; selectors with instance state the name
///    doesn't encode, like the weighted selectors' priors, override it) —
///    two selectors with equal fingerprints must implement the same
///    decision function;
///  * fingerprints are 64-bit: collisions are astronomically unlikely, not
///    impossible. The randomized parity suite exists to catch construction
///    bugs that would make them likely.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "collection/fingerprint.h"
#include "collection/types.h"
#include "core/selector.h"
#include "core/sharded_selectors.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "service/durability.h"
#include "util/status.h"

namespace setdisc {

/// Identity of one memoizable selection decision.
struct SelectionKey {
  uint64_t collection_fingerprint = 0;  ///< SetCollection::Fingerprint()
  uint64_t sub_fingerprint = 0;         ///< SubCollection::Fingerprint()
  uint64_t exclusion_fingerprint = 0;   ///< EntityExclusion::Fingerprint(), 0 = none
  uint64_t selector_tag = 0;            ///< SelectionCache::SelectorTag(name)

  bool operator==(const SelectionKey&) const = default;
};

struct SelectionCacheOptions {
  /// Total entry bound across all shards (minimum one slot per shard).
  size_t capacity = size_t{1} << 20;

  /// Mutex stripes; rounded up to a power of two. More shards = less
  /// contention, slightly worse space utilization at tiny capacities.
  size_t num_shards = 16;

  /// Admission policy for one-shot states: when true, selection states whose
  /// exclusion mask holds exactly ONE entity bypass the cache entirely (no
  /// lookup, no insert). The first "don't know" of a session produces a
  /// singleton mask that is usually unique to that conversation — caching it
  /// costs a slot (and an eviction under pressure) for an entry nobody else
  /// will hit. States with deeper masks, and the empty mask, are cached as
  /// usual. Bypassed decisions are counted in SelectionCacheStats::bypasses
  /// and never touch hit/miss counters, so the hit rate reflects only
  /// admitted traffic. Off by default; transcripts are identical either way
  /// (the parity suite runs with the policy on).
  bool skip_singleton_exclusions = false;

  /// When set, the cache registers a probe with this registry that adopts
  /// its counters (setdisc_selection_cache_*_total, _size) into every
  /// snapshot. The registry must outlive the cache.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Aggregated counters. Consistent at any quiescent point:
/// hits + misses == lookups, and insertions >= size() + evictions (an
/// insertion can overwrite an existing key — racing sessions recompute the
/// same miss — and Clear() drops entries while keeping counters).
struct SelectionCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  /// Decisions that skipped the cache under the one-shot admission policy
  /// (skip_singleton_exclusions); not part of lookups/hits/misses.
  uint64_t bypasses = 0;

  double HitRate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// Sharded, bounded, thread-safe Select() memo.
class SelectionCache {
 public:
  explicit SelectionCache(SelectionCacheOptions options = {});

  SelectionCache(const SelectionCache&) = delete;
  SelectionCache& operator=(const SelectionCache&) = delete;

  /// Returns true and writes the memoized entity (possibly kNoEntity — "no
  /// informative entity" is a valid, cacheable decision) on a hit.
  bool Lookup(const SelectionKey& key, EntityId* out);

  /// Memoizes `value` for `key`, evicting (CLOCK) when the shard is full.
  /// Re-inserting an existing key overwrites in place.
  void Insert(const SelectionKey& key, EntityId value);

  /// Stable tag for a selector name — what the default
  /// EntitySelector::DecisionFingerprint() produces for the selector_tag
  /// key component.
  static uint64_t SelectorTag(std::string_view name) {
    return FingerprintString(name);
  }

  SelectionCacheStats stats() const;

  /// Warm-start persistence: writes every live entry to `path` atomically
  /// (CRC-framed, durability.h format). Keys embed the collection
  /// fingerprint, so one file can safely hold entries for several
  /// collections — stale ones are simply never hit. Safe to call while
  /// other threads use the cache (per-shard snapshot).
  Status Save(const std::string& path, StoreFs* fs = nullptr) const;

  /// Re-inserts entries previously Save()d; returns how many were loaded.
  /// Corrupt or torn files load their intact prefix (possibly zero entries)
  /// — a warm start must never block serving. A missing file is OK with 0.
  Result<size_t> Load(const std::string& path, StoreFs* fs = nullptr);

  /// Live entries across all shards.
  size_t size() const;

  /// Drops all entries (counters are kept).
  void Clear();

  size_t capacity() const { return capacity_per_shard_ * num_shards_; }
  size_t num_shards() const { return num_shards_; }

  /// True when the admission policy says this state should bypass the cache
  /// (singleton exclusion mask under skip_singleton_exclusions).
  bool Bypasses(const EntityExclusion* excluded) const {
    return skip_singleton_exclusions_ && excluded != nullptr &&
           excluded->num_excluded() == 1;
  }

  /// Counts one bypassed decision (called by CachingSelector when
  /// Bypasses() fired).
  void CountBypass() { bypasses_.fetch_add(1, std::memory_order_relaxed); }

 private:
  struct Slot {
    SelectionKey key;
    EntityId value = kNoEntity;
    bool referenced = false;
  };

  struct KeyHash {
    size_t operator()(const SelectionKey& key) const {
      return static_cast<size_t>(HashKey(key));
    }
  };

  /// One stripe: mutex, index, CLOCK slot array, counters. Padded to a cache
  /// line so neighboring stripes don't false-share.
  struct alignas(64) Shard {
    std::mutex mu;
    std::unordered_map<SelectionKey, size_t, KeyHash> index;  // key -> slot
    std::vector<Slot> slots;
    size_t hand = 0;
    uint64_t lookups = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
  };

  static uint64_t HashKey(const SelectionKey& key);
  Shard& ShardFor(const SelectionKey& key);

  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_ = 0;
  size_t capacity_per_shard_ = 0;
  int shard_shift_ = 0;  ///< top bits of HashKey pick the shard
  bool skip_singleton_exclusions_ = false;
  /// Outside the shards (a bypass touches no shard); relaxed is enough for
  /// a statistics counter.
  std::atomic<uint64_t> bypasses_{0};
  /// Last member: deregisters first, so the probe can never sample a
  /// partially-destroyed cache.
  obs::MetricsRegistry::ProbeHandle probe_;
};

/// EntitySelector decorator that consults a shared SelectionCache before
/// delegating to the wrapped selector, and memoizes what the latter decides.
///
/// One CachingSelector per session, exactly like any other selector (the
/// decorator is stateless beyond its members but the inner selector is not);
/// the SelectionCache it points at is shared and must outlive it. Wrap only
/// deterministic selectors.
class CachingSelector : public EntitySelector {
 public:
  CachingSelector(std::unique_ptr<EntitySelector> inner, SelectionCache* cache)
      : inner_(std::move(inner)),
        cache_(cache),
        tag_(inner_->DecisionFingerprint()) {}

  EntityId Select(const SubCollection& sub,
                  const EntityExclusion* excluded = nullptr) override {
    if (cache_->Bypasses(excluded)) {
      // One-shot state under the admission policy: don't spend a slot (or a
      // guaranteed miss) on it — compute directly.
      cache_->CountBypass();
      return inner_->Select(sub, excluded);
    }
    SelectionKey key{sub.collection().Fingerprint(), sub.Fingerprint(),
                     excluded != nullptr ? excluded->Fingerprint() : 0, tag_};
    EntityId entity = kNoEntity;
    {
      obs::PhaseTimer timer(obs::Phase::kCacheLookup);
      if (cache_->Lookup(key, &entity)) {
        obs::NoteServePath(obs::ServePath::kCacheHit);
        return entity;
      }
    }
    entity = inner_->Select(sub, excluded);
    {
      obs::PhaseTimer timer(obs::Phase::kCacheLookup);
      cache_->Insert(key, entity);
    }
    return entity;
  }

  std::string_view name() const override { return inner_->name(); }

  /// Differential-counting hooks pass straight through: the inner selector
  /// owns the counting state. Composition with the cache is automatic — a
  /// cache hit skips the inner Select(), so the inner state's fingerprint
  /// check fails on the NEXT miss and that miss recounts in full, re-seeding
  /// the chain; misses along an uncached suffix then ride the delta path.
  void NotePartition(const SubCollection& parent, EntityId e,
                     bool kept_contains, const SubCollection& kept,
                     SubCollection dropped) override {
    inner_->NotePartition(parent, e, kept_contains, kept, std::move(dropped));
  }
  void InvalidateCountState() override { inner_->InvalidateCountState(); }
  void ReleaseMemory() override { inner_->ReleaseMemory(); }

  /// Effort changes may change the inner decision function, and tag_ was
  /// snapshotted at construction — refresh it so degraded decisions land
  /// under a different cache key than full-effort ones (the shared cache
  /// must never cross-serve them).
  void SetEffort(int level) override {
    inner_->SetEffort(level);
    tag_ = inner_->DecisionFingerprint();
  }

  EntitySelector& inner() { return *inner_; }

 private:
  std::unique_ptr<EntitySelector> inner_;
  SelectionCache* cache_;
  uint64_t tag_;
};

/// The sharded twin of CachingSelector: decorates a ShardedEntitySelector
/// with the same shared memo. The key composes the per-shard fingerprints —
/// ShardedCollection::Fingerprint() folds the K shard content fingerprints
/// with K and the scheme, ShardedSubCollection::Fingerprint() folds the K
/// per-shard candidate fingerprints — so sessions over different shard
/// counts (or schemes) of the same collection can share one cache without
/// ever colliding: a different K is a different collection fingerprint.
/// K == 1 keys are constructed to equal the unsharded ones, so degenerate
/// sharded sessions and unsharded sessions share their entries.
class ShardedCachingSelector : public ShardedEntitySelector {
 public:
  ShardedCachingSelector(std::unique_ptr<ShardedEntitySelector> inner,
                         SelectionCache* cache)
      : inner_(std::move(inner)),
        cache_(cache),
        tag_(inner_->DecisionFingerprint()) {}

  EntityId Select(const ShardedSubCollection& sub,
                  const EntityExclusion* excluded = nullptr) override {
    if (cache_->Bypasses(excluded)) {
      cache_->CountBypass();
      return inner_->Select(sub, excluded);
    }
    SelectionKey key{sub.collection().Fingerprint(), sub.Fingerprint(),
                     excluded != nullptr ? excluded->Fingerprint() : 0, tag_};
    EntityId entity = kNoEntity;
    {
      obs::PhaseTimer timer(obs::Phase::kCacheLookup);
      if (cache_->Lookup(key, &entity)) {
        obs::NoteServePath(obs::ServePath::kCacheHit);
        return entity;
      }
    }
    entity = inner_->Select(sub, excluded);
    {
      obs::PhaseTimer timer(obs::Phase::kCacheLookup);
      cache_->Insert(key, entity);
    }
    return entity;
  }

  std::string_view name() const override { return inner_->name(); }

  /// The counting pool belongs to the inner selector doing the work.
  void set_pool(ThreadPool* pool) override { inner_->set_pool(pool); }

  /// Differential-counting pass-through; see CachingSelector.
  void NotePartition(const ShardedSubCollection& parent, EntityId e,
                     bool kept_contains, const ShardedSubCollection& kept,
                     ShardedSubCollection dropped) override {
    inner_->NotePartition(parent, e, kept_contains, kept, std::move(dropped));
  }
  void InvalidateCountState() override { inner_->InvalidateCountState(); }
  void ReleaseMemory() override { inner_->ReleaseMemory(); }

  /// See CachingSelector::SetEffort: keep tag_ in lockstep with the inner
  /// decision function.
  void SetEffort(int level) override {
    inner_->SetEffort(level);
    tag_ = inner_->DecisionFingerprint();
  }

  ShardedEntitySelector& inner() { return *inner_; }

 private:
  std::unique_ptr<ShardedEntitySelector> inner_;
  SelectionCache* cache_;
  uint64_t tag_;
};

}  // namespace setdisc
