#pragma once

/// \file registry.h
/// MetricsRegistry: the process-wide catalogue of named metric families.
///
/// A family is a metric name plus a label set — `step_latency{selector=
/// "Klp", shards="4"}` — and GetCounter/GetGauge/GetHistogram return a
/// stable pointer to the one instance for that (name, labels) pair,
/// creating it on first use. Callers look a handle up once (registry
/// lookups take a mutex) and then record through the lock-free primitive.
///
/// The registry also *adopts* stats that live elsewhere — the selection
/// cache's hit counters, the server's frame counters, a pool's queue depth
/// — via probes: callbacks invoked at Snapshot() time that emit samples
/// into the same output. One Snapshot() therefore sees the whole engine.
/// Probes run under the registry mutex and must not call back into the
/// registry; the RAII ProbeHandle deregisters on destruction, so a probe
/// never outlives the object it samples.
///
/// Snapshots render to Prometheus text exposition (ToPrometheusText) and
/// JSON (ToJson); histograms surface as summaries with p50/p90/p99/p999.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace setdisc::obs {

/// Sorted (key, value) pairs; order-insensitive on input (Get* sorts).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// One counter or gauge value in a snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge };
  std::string name;
  Labels labels;
  Kind kind = Kind::kCounter;
  int64_t value = 0;
};

/// One histogram family in a snapshot.
struct HistogramSample {
  std::string name;
  Labels labels;
  HistogramSnapshot snapshot;
};

/// Everything the registry knew at one instant.
struct RegistrySnapshot {
  std::vector<MetricSample> samples;
  std::vector<HistogramSample> histograms;

  /// Prometheus text exposition format 0.0.4; histograms as summaries.
  std::string ToPrometheusText() const;

  /// One JSON object: {"metrics": [...], "histograms": [...]}.
  std::string ToJson() const;
};

/// Receives samples from a probe during Snapshot().
class SampleSink {
 public:
  void Counter(std::string_view name, uint64_t value, Labels labels = {});
  void Gauge(std::string_view name, int64_t value, Labels labels = {});

 private:
  friend class MetricsRegistry;
  explicit SampleSink(std::vector<MetricSample>* out) : out_(out) {}
  std::vector<MetricSample>* out_;
};

class MetricsRegistry {
 public:
  /// The process-wide instance every built-in instrumentation point uses.
  static MetricsRegistry& Default();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Stable pointers, created on first use. The registry owns the metric;
  /// handles stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name, Labels labels = {});
  Gauge* GetGauge(std::string_view name, Labels labels = {});
  Histogram* GetHistogram(std::string_view name, Labels labels = {});

  /// A probe adopts externally-owned stats: it is called at every
  /// Snapshot() to emit current values. Runs under the registry mutex —
  /// it must not call back into this registry. Destroy (or Release) the
  /// returned handle before the sampled object dies.
  using Probe = std::function<void(SampleSink&)>;

  class ProbeHandle {
   public:
    ProbeHandle() = default;
    ProbeHandle(ProbeHandle&& other) noexcept { *this = std::move(other); }
    ProbeHandle& operator=(ProbeHandle&& other) noexcept;
    ProbeHandle(const ProbeHandle&) = delete;
    ProbeHandle& operator=(const ProbeHandle&) = delete;
    ~ProbeHandle() { Release(); }

    /// Deregisters now (idempotent). Blocks until any in-flight Snapshot()
    /// finishes, so the probe is never invoked after Release() returns.
    void Release();

   private:
    friend class MetricsRegistry;
    ProbeHandle(MetricsRegistry* registry, uint64_t id)
        : registry_(registry), id_(id) {}
    MetricsRegistry* registry_ = nullptr;
    uint64_t id_ = 0;
  };

  ProbeHandle AddProbe(Probe probe);

  /// Current values of every registered metric plus every probe's samples.
  RegistrySnapshot Snapshot() const;

  /// Bucket-wise merge of every histogram family named `name`, across all
  /// label sets — the "overall step latency" view the stats reply ships.
  HistogramSnapshot MergedHistogram(std::string_view name) const;

  /// Sum of every counter family named `name` across label sets.
  uint64_t CounterTotal(std::string_view name) const;

 private:
  struct FamilyKey {
    std::string name;
    Labels labels;
    bool operator<(const FamilyKey& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  static FamilyKey MakeKey(std::string_view name, Labels labels);

  mutable std::mutex mu_;
  std::map<FamilyKey, std::unique_ptr<Counter>> counters_;
  std::map<FamilyKey, std::unique_ptr<Gauge>> gauges_;
  std::map<FamilyKey, std::unique_ptr<Histogram>> histograms_;
  std::map<uint64_t, Probe> probes_;
  uint64_t next_probe_id_ = 1;
};

/// Renders `labels` as a Prometheus selector body: `a="x",b="y"` (empty
/// string for no labels). Shared by the text renderers and the wire dump.
std::string FormatLabels(const Labels& labels);

}  // namespace setdisc::obs
