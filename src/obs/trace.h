#pragma once

/// \file trace.h
/// Per-step phase attribution and per-session trace rings.
///
/// The question "why was this step slow?" needs latencies attributed to the
/// stages of a step — counting, candidate ordering, the partition/emit on
/// answer, the selection-cache lookup, the sharded merge — but those stages
/// live deep inside selectors, counters, and cache decorators whose APIs
/// should not grow a context parameter. Instead the session installs a
/// thread-local PhaseAccum around each step (PhaseScope), and instrumented
/// code records into it through PhaseTimer / NoteServePath. When no scope
/// is installed (metrics disabled, or code driven outside a session step),
/// a PhaseTimer is a thread-local load and a branch — no clock read.
///
/// Phase times are attributed on the *stepping thread*: work a sharded step
/// fans out to pool workers overlaps the step's wall time and is counted
/// only for the slices the calling thread executes itself (ParallelFor
/// callers claim items too). The phases are therefore a breakdown of the
/// step's critical path, not a CPU-time accounting.
///
/// A TraceRing is the bounded per-session journal of completed steps —
/// off by default, enabled per session (CreateSession trace flag). It is
/// written and read under the session's entry mutex (SessionManager
/// serializes steps), so it needs no locking of its own.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/metrics.h"

namespace setdisc::obs {

/// The step stages a PhaseTimer can charge.
enum class Phase : uint8_t {
  kCacheLookup = 0,  ///< selection-cache probe (and insert on miss)
  kCount = 1,        ///< counting pass (full, delta-derived, or re-emit)
  kOrder = 2,        ///< candidate ordering / scoring pass
  kShardMerge = 3,   ///< k-way merge of per-shard count lists
  kEmit = 4,         ///< partition-on-answer + counting-state handoff
  kSelect = 5,       ///< the whole selector Select() call (spans 0-3)
};
inline constexpr size_t kNumPhases = 6;

const char* PhaseName(Phase phase);

/// How the step's top-level counting pass was served (mirrors
/// DeltaCounterStats plus the cache short-circuit).
enum class ServePath : uint8_t {
  kUnknown = 0,
  kFull = 1,      ///< full recount
  kDelta = 2,     ///< derived from the parent's counts
  kReemit = 3,    ///< identical view re-served from retained counts
  kCacheHit = 4,  ///< selection cache hit — no counting at all
};

const char* ServePathName(ServePath path);

/// Per-step scratch the timers accumulate into.
struct PhaseAccum {
  uint64_t ns[kNumPhases] = {};
  uint8_t serve_path = 0;  // ServePath
};

namespace internal {
inline thread_local PhaseAccum* t_phase_accum = nullptr;
}  // namespace internal

/// Installs `accum` as this thread's active step context for the scope
/// (nullptr = leave instrumentation dormant). Nests correctly.
class PhaseScope {
 public:
  explicit PhaseScope(PhaseAccum* accum)
      : prev_(internal::t_phase_accum) {
    internal::t_phase_accum = accum;
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;
  ~PhaseScope() { internal::t_phase_accum = prev_; }

 private:
  PhaseAccum* prev_;
};

/// Charges the scope's wall time to `phase` of the active step context.
/// `armed = false` (e.g. a non-top-level recursion) or no active context
/// skips the clock reads entirely.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase phase, bool armed = true)
      : phase_(phase),
        start_(armed && internal::t_phase_accum != nullptr ? NowNanos() : 0) {}
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;
  ~PhaseTimer() {
    if (start_ != 0) {
      internal::t_phase_accum->ns[static_cast<size_t>(phase_)] +=
          NowNanos() - start_;
    }
  }

 private:
  Phase phase_;
  uint64_t start_;
};

/// Tags the active step with how its counting pass was served. Later calls
/// win only when the current tag is kUnknown — the first decisive path
/// (cache hit, delta, full) describes the step.
inline void NoteServePath(ServePath path) {
  PhaseAccum* accum = internal::t_phase_accum;
  if (accum != nullptr && accum->serve_path == 0) {
    accum->serve_path = static_cast<uint8_t>(path);
  }
}

/// Records each nonzero phase of `accum` into the process-wide
/// `setdisc_step_phase_ns{phase=...}` histograms (no-op when metrics are
/// disabled).
void RecordStepPhases(const PhaseAccum& accum);

/// One completed step of a traced session.
struct TraceEvent {
  uint32_t step = 0;      ///< 0-based index among this session's steps
  uint32_t entity = 0;    ///< entity answered (kNoEntity for verify steps)
  uint8_t kind = 0;       ///< 0 = answer step, 1 = verify step
  uint8_t serve_path = 0; ///< ServePath
  uint32_t candidates_before = 0;
  uint32_t candidates_after = 0;
  uint64_t phase_ns[kNumPhases] = {};
  uint64_t total_ns = 0;  ///< wall time of the whole step
};

/// Fixed-capacity overwrite-oldest journal of TraceEvents. Not internally
/// synchronized: callers (the session, via its entry mutex) serialize
/// Push() against Events().
class TraceRing {
 public:
  explicit TraceRing(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {
    events_.reserve(capacity_);
  }

  void Push(const TraceEvent& event) {
    if (events_.size() < capacity_) {
      events_.push_back(event);
    } else {
      events_[head_] = event;
      head_ = (head_ + 1) % capacity_;
    }
    ++total_;
  }

  /// Retained events, oldest first.
  std::vector<TraceEvent> Events() const {
    std::vector<TraceEvent> out;
    out.reserve(events_.size());
    for (size_t i = 0; i < events_.size(); ++i) {
      out.push_back(events_[(head_ + i) % events_.size()]);
    }
    return out;
  }

  size_t capacity() const { return capacity_; }
  /// Total events ever pushed (>= Events().size(); the difference was
  /// overwritten).
  uint64_t total() const { return total_; }

 private:
  size_t capacity_;
  size_t head_ = 0;  // oldest retained event once full
  uint64_t total_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace setdisc::obs
