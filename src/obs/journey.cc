#include "obs/journey.h"

#include <algorithm>
#include <cstdio>
#include <random>

namespace setdisc::obs {

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t ThreadSeed() {
  static std::atomic<uint64_t> process_salt{0};
  std::random_device rd;
  return (uint64_t{rd()} << 32) ^ rd() ^
         (process_salt.fetch_add(1, std::memory_order_relaxed) << 17);
}

}  // namespace

TraceId MakeTraceId() {
  thread_local uint64_t state = ThreadSeed();
  TraceId id;
  do {
    id.hi = SplitMix64(&state);
    id.lo = SplitMix64(&state);
  } while (!id.valid());
  return id;
}

uint64_t NextSpanId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

namespace {

void CopyTruncated(char* dst, size_t cap, std::string_view src) {
  const size_t n = std::min(src.size(), cap - 1);
  if (n != 0) std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

}  // namespace

void Span::SetName(std::string_view n) { CopyTruncated(name, sizeof(name), n); }

void Span::Annotate(std::string_view key, std::string_view value) {
  if (num_annotations >= kMaxSpanAnnotations) return;
  CopyTruncated(ann_key[num_annotations], kMaxAnnotationKey, key);
  CopyTruncated(ann_value[num_annotations], kMaxAnnotationValue, value);
  ++num_annotations;
}

void Span::AnnotateU64(std::string_view key, uint64_t value) {
  // Manual digits: this runs a few times per step on the serving hot path,
  // where snprintf's format parsing is measurable against the <2% budget.
  char buf[20];
  char* p = buf + sizeof(buf);
  do {
    *--p = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  Annotate(key, std::string_view(p, buf + sizeof(buf) - p));
}

// ---------------------------------------------------------------------------
// JourneyRing
// ---------------------------------------------------------------------------

JourneyRing::JourneyRing(size_t capacity)
    : slots_(std::max<size_t>(capacity, 1)) {}

void JourneyRing::Push(const Span& span) {
  const uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % slots_.size()];
  // Seqlock write: stamp odd, copy words relaxed, stamp even. The stamps are
  // ticket-derived so a reader that raced a *completed* overwrite still sees
  // the sequence change and retries/skips.
  slot.seq.store(2 * ticket + 1, std::memory_order_relaxed);
  // Fence-to-fence pairing with Snapshot's acquire fence: a reader that sees
  // any of the data words below also sees the odd stamp above, so it cannot
  // validate a torn read.
  std::atomic_thread_fence(std::memory_order_release);
  uint64_t words[kSpanWords];
  std::memcpy(words, &span, sizeof(span));
  for (size_t i = 0; i < kSpanWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(2 * ticket + 2, std::memory_order_release);
}

std::vector<Span> JourneyRing::Snapshot() const {
  struct Entry {
    uint64_t ticket;
    Span span;
  };
  std::vector<Entry> entries;
  entries.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 == 0) break;        // never written
      if (s1 % 2 != 0) continue; // writer mid-copy; retry
      uint64_t words[kSpanWords];
      for (size_t i = 0; i < kSpanWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) continue;  // torn
      Entry e;
      e.ticket = s1 / 2 - 1;
      std::memcpy(&e.span, words, sizeof(Span));
      entries.push_back(e);
      break;
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.ticket < b.ticket; });
  std::vector<Span> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) out.push_back(e.span);
  return out;
}

JourneyRing& Journey() {
  static JourneyRing* ring = new JourneyRing(8192);
  return *ring;
}

namespace {
std::atomic<bool> g_journey_enabled{false};
}  // namespace

bool JourneyEnabled() {
  return g_journey_enabled.load(std::memory_order_relaxed);
}

void SetJourneyEnabled(bool enabled) {
  g_journey_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Emission
// ---------------------------------------------------------------------------

void EmitStepSpans(JourneyContext& ctx, uint8_t kind, uint32_t step_index,
                   uint32_t entity, uint64_t total_ns,
                   const PhaseAccum& accum) {
  if (!ctx.trace.valid()) ctx.trace = MakeTraceId();
  const uint64_t end_ns = NowNanos();
  const uint64_t start_ns = end_ns - std::min(end_ns, total_ns);

  Span step;
  step.trace_hi = ctx.trace.hi;
  step.trace_lo = ctx.trace.lo;
  step.span_id = NextSpanId();
  step.parent_id = ctx.request_span;
  step.start_ns = start_ns;
  step.duration_ns = total_ns;
  step.SetName(kind == 0 ? "step:answer" : "step:verify");
  step.AnnotateU64("step", step_index);
  if (entity != UINT32_MAX) step.AnnotateU64("entity", entity);
  step.Annotate("path", ServePathName(static_cast<ServePath>(
                    accum.serve_path <= 4 ? accum.serve_path : 0)));
  // kSelect spans phases 0-3, so it would double-cover as a child; keep it
  // as an annotation instead.
  if (accum.ns[static_cast<size_t>(Phase::kSelect)] > 0) {
    step.AnnotateU64("select_ns", accum.ns[static_cast<size_t>(Phase::kSelect)]);
  }
  JourneyRing& ring = Journey();
  ring.Push(step);

  // Phase children, laid out back-to-back from the step's start. Durations
  // are exact; offsets are the approximation (phases run in roughly this
  // order but interleave). Sub-microsecond phases stay inside the step span.
  uint64_t offset = start_ns;
  for (size_t i = 0; i < static_cast<size_t>(Phase::kSelect); ++i) {
    const uint64_t ns = accum.ns[i];
    if (ns < 1000) continue;
    Span child;
    child.trace_hi = ctx.trace.hi;
    child.trace_lo = ctx.trace.lo;
    child.span_id = NextSpanId();
    child.parent_id = step.span_id;
    child.start_ns = offset;
    child.duration_ns = ns;
    child.SetName(PhaseName(static_cast<Phase>(i)));
    ring.Push(child);
    offset += ns;
  }

  ctx.have_step = true;
  ctx.step_kind = kind;
  ctx.step_index = step_index;
  ctx.step_span = step.span_id;
  ctx.step_total_ns = total_ns;
  ctx.step_accum = accum;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

namespace {

void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendHex128(std::string* out, uint64_t hi, uint64_t lo) {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  *out += buf;
}

}  // namespace

std::string SpansToChromeJson(const std::vector<Span>& spans) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans) {
    if (!first) out += ",";
    first = false;
    char buf[128];
    // tid groups one trace's spans onto one track; fold 128 bits to 31 so
    // the viewer gets a small positive integer.
    const uint64_t tid = ((s.trace_hi ^ s.trace_lo) & 0x7fffffffULL) | 1;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, s.name);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    std::snprintf(buf, sizeof(buf), "%llu,\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<unsigned long long>(tid),
                  static_cast<double>(s.start_ns) / 1000.0,
                  static_cast<double>(s.duration_ns) / 1000.0);
    out += buf;
    out += ",\"args\":{\"trace_id\":\"";
    AppendHex128(&out, s.trace_hi, s.trace_lo);
    std::snprintf(buf, sizeof(buf), "\",\"span_id\":%llu,\"parent_id\":%llu",
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id));
    out += buf;
    for (uint8_t i = 0; i < s.num_annotations && i < kMaxSpanAnnotations; ++i) {
      out += ",\"";
      AppendJsonEscaped(&out, s.ann_key[i]);
      out += "\":\"";
      AppendJsonEscaped(&out, s.ann_value[i]);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string JourneyChromeJson() {
  return SpansToChromeJson(Journey().Snapshot());
}

bool WriteJourneyTrace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = JourneyChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace setdisc::obs
