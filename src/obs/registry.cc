#include "obs/registry.h"

#include <algorithm>
#include <cstdio>

namespace setdisc::obs {

namespace {

/// JSON string escaping for metric names / label values (ASCII-safe).
void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out->append("\\\""); break;
      case '\\': out->append("\\\\"); break;
      case '\n': out->append("\\n"); break;
      case '\t': out->append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendJsonLabels(std::string* out, const Labels& labels) {
  out->push_back('{');
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out->push_back(',');
    AppendJsonString(out, labels[i].first);
    out->push_back(':');
    AppendJsonString(out, labels[i].second);
  }
  out->push_back('}');
}

const uint64_t kSummaryQuantileMille[] = {500, 900, 990, 999};

}  // namespace

std::string FormatLabels(const Labels& labels) {
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i != 0) out.push_back(',');
    out += labels[i].first;
    out += "=\"";
    // Exposition-format escaping: inside a label value, backslash, double
    // quote, and line feed must be escaped (and nothing else is).
    for (char c : labels[i].second) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out.push_back(c);
      }
    }
    out += "\"";
  }
  return out;
}

void SampleSink::Counter(std::string_view name, uint64_t value,
                         Labels labels) {
  MetricSample s;
  s.name = std::string(name);
  std::sort(labels.begin(), labels.end());
  s.labels = std::move(labels);
  s.kind = MetricSample::Kind::kCounter;
  s.value = static_cast<int64_t>(value);
  out_->push_back(std::move(s));
}

void SampleSink::Gauge(std::string_view name, int64_t value, Labels labels) {
  MetricSample s;
  s.name = std::string(name);
  std::sort(labels.begin(), labels.end());
  s.labels = std::move(labels);
  s.kind = MetricSample::Kind::kGauge;
  s.value = value;
  out_->push_back(std::move(s));
}

std::string RegistrySnapshot::ToPrometheusText() const {
  std::string out;
  std::string last_type_line;
  for (const MetricSample& s : samples) {
    std::string type_line = "# TYPE " + s.name + " " +
                            (s.kind == MetricSample::Kind::kCounter
                                 ? "counter"
                                 : "gauge") +
                            "\n";
    if (type_line != last_type_line) {
      out += type_line;
      last_type_line = type_line;
    }
    out += s.name;
    std::string labels = FormatLabels(s.labels);
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(s.value) + "\n";
  }
  for (const HistogramSample& h : histograms) {
    out += "# TYPE " + h.name + " summary\n";
    std::string labels = FormatLabels(h.labels);
    for (uint64_t mille : kSummaryQuantileMille) {
      std::string q = mille % 10 == 0
                          ? "0." + std::to_string(mille / 10)
                          : "0." + std::to_string(mille);
      out += h.name + "{" + (labels.empty() ? "" : labels + ",") +
             "quantile=\"" + q + "\"} " +
             std::to_string(
                 h.snapshot.ValueAtQuantile(static_cast<double>(mille) /
                                            1000.0)) +
             "\n";
    }
    out += h.name + "_sum";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(h.snapshot.sum) + "\n";
    out += h.name + "_count";
    if (!labels.empty()) out += "{" + labels + "}";
    out += " " + std::to_string(h.snapshot.count) + "\n";
  }
  return out;
}

std::string RegistrySnapshot::ToJson() const {
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i != 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(&out, s.name);
    out += ",\"labels\":";
    AppendJsonLabels(&out, s.labels);
    out += ",\"kind\":";
    out += s.kind == MetricSample::Kind::kCounter ? "\"counter\""
                                                  : "\"gauge\"";
    out += ",\"value\":" + std::to_string(s.value) + "}";
  }
  out += "],\"histograms\":[";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSample& h = histograms[i];
    if (i != 0) out.push_back(',');
    out += "{\"name\":";
    AppendJsonString(&out, h.name);
    out += ",\"labels\":";
    AppendJsonLabels(&out, h.labels);
    out += ",\"count\":" + std::to_string(h.snapshot.count);
    out += ",\"sum\":" + std::to_string(h.snapshot.sum);
    out += ",\"p50\":" + std::to_string(h.snapshot.ValueAtQuantile(0.50));
    out += ",\"p90\":" + std::to_string(h.snapshot.ValueAtQuantile(0.90));
    out += ",\"p99\":" + std::to_string(h.snapshot.ValueAtQuantile(0.99));
    out += ",\"p999\":" + std::to_string(h.snapshot.ValueAtQuantile(0.999));
    out += "}";
  }
  out += "]}";
  return out;
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never dies
  return *registry;
}

MetricsRegistry::FamilyKey MetricsRegistry::MakeKey(std::string_view name,
                                                    Labels labels) {
  std::sort(labels.begin(), labels.end());
  return FamilyKey{std::string(name), std::move(labels)};
}

Counter* MetricsRegistry::GetCounter(std::string_view name, Labels labels) {
  FamilyKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, Labels labels) {
  FamilyKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         Labels labels) {
  FamilyKey key = MakeKey(name, std::move(labels));
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[std::move(key)];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsRegistry::ProbeHandle& MetricsRegistry::ProbeHandle::operator=(
    ProbeHandle&& other) noexcept {
  if (this != &other) {
    Release();
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
    other.id_ = 0;
  }
  return *this;
}

void MetricsRegistry::ProbeHandle::Release() {
  if (registry_ == nullptr) return;
  std::lock_guard<std::mutex> lock(registry_->mu_);
  registry_->probes_.erase(id_);
  registry_ = nullptr;
  id_ = 0;
}

MetricsRegistry::ProbeHandle MetricsRegistry::AddProbe(Probe probe) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = next_probe_id_++;
  probes_.emplace(id, std::move(probe));
  return ProbeHandle(this, id);
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = MetricSample::Kind::kCounter;
    s.value = static_cast<int64_t>(counter->Value());
    snap.samples.push_back(std::move(s));
  }
  for (const auto& [key, gauge] : gauges_) {
    MetricSample s;
    s.name = key.name;
    s.labels = key.labels;
    s.kind = MetricSample::Kind::kGauge;
    s.value = gauge->Value();
    snap.samples.push_back(std::move(s));
  }
  SampleSink sink(&snap.samples);
  for (const auto& [id, probe] : probes_) probe(sink);
  for (const auto& [key, histogram] : histograms_) {
    HistogramSample h;
    h.name = key.name;
    h.labels = key.labels;
    h.snapshot = histogram->Snapshot();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

HistogramSnapshot MetricsRegistry::MergedHistogram(
    std::string_view name) const {
  HistogramSnapshot merged;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, histogram] : histograms_) {
    if (key.name != name) continue;
    merged.Merge(histogram->Snapshot());
  }
  return merged;
}

uint64_t MetricsRegistry::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) total += counter->Value();
  }
  return total;
}

}  // namespace setdisc::obs
