#pragma once

/// \file metrics.h
/// Observability primitives: sharded relaxed-atomic counters, gauges, and a
/// fixed-bucket log-linear latency histogram (HDR-style), all cheap enough
/// to sit on the per-step hot path.
///
/// Design constraints, in order:
///
///  * Record() is lock-free and wait-free — one relaxed fetch_add into a
///    bucket plus one into the running sum (<50ns, typically ~15ns);
///  * a snapshot is mergeable: per-process histograms from different
///    sources (or different processes, over the wire) add bucket-wise;
///  * the whole subsystem has a single global kill switch (SetEnabled) so
///    bench_obs can measure the instrumented binary with metrics off — the
///    disabled fast path is one relaxed atomic load.
///
/// Everything here depends only on the standard library; every other layer
/// (collection/, core/, service/, net/, util/) may include it freely.

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace setdisc::obs {

/// Global metrics kill switch. On by default; bench_obs flips it to measure
/// the cost of the instrumentation itself. Relaxed: flipping it mid-flight
/// only makes concurrent recorders stop (or start) at their next check.
bool Enabled();
void SetEnabled(bool enabled);

/// Monotonic nanoseconds (steady_clock). The one clock all timers read.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically increasing event counter, striped across cache lines so
/// concurrent writers from different threads don't bounce one hot line.
/// Value() sums the stripes — a racy-but-consistent-enough read, like every
/// monitoring counter.
class Counter {
 public:
  static constexpr size_t kStripes = 8;  // power of two

  void Add(uint64_t n = 1) {
    cells_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };

  static size_t StripeIndex();

  Cell cells_[kStripes];
};

/// A settable signed level (queue depth, buffered bytes). Single atomic:
/// gauges are updated from few places and read rarely.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Sub(int64_t n) { v_.fetch_sub(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Point-in-time copy of a Histogram, safe to merge, quantile, and ship.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  std::vector<uint64_t> buckets;  // size Histogram::kNumBuckets (or empty)

  /// Bucket-wise addition; the quantile error bound is unchanged.
  void Merge(const HistogramSnapshot& other);

  /// Value at quantile q in [0, 1]: the representative (midpoint) of the
  /// bucket containing the rank-ceil(q*count) recorded value. Relative
  /// error is bounded by the bucket width: < 2^-kSubBucketBits (6.25%).
  /// Returns 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Fixed-bucket log-linear histogram over uint64 values (nanoseconds, bytes,
/// counts). Values 0..15 get exact unit buckets; above that each power-of-2
/// octave splits into 16 linear sub-buckets, so relative error is <= 1/16
/// everywhere while the whole table is 976 buckets (~7.6 KiB).
///
/// Record() is wait-free (two relaxed fetch_adds); Snapshot() is a relaxed
/// scan that may tear against concurrent writers by at most the writes in
/// flight — fine for monitoring, and exactly what the TSan test checks
/// stays race-free.
class Histogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBucketBits;  // 16
  /// 16 unit buckets + (63 - 4 + 1) octaves of 16 sub-buckets each.
  static constexpr size_t kNumBuckets =
      kSubBuckets + (64 - kSubBucketBits) * kSubBuckets;  // 976

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  HistogramSnapshot Snapshot() const;

  /// Bucket index of `value`; the inverse maps below bound the bucket's
  /// value range [lower, upper).
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    const int h = 63 - std::countl_zero(value);  // floor(log2(value))
    return kSubBuckets +
           static_cast<size_t>(h - kSubBucketBits) * kSubBuckets +
           static_cast<size_t>((value >> (h - kSubBucketBits)) &
                               (kSubBuckets - 1));
  }

  static uint64_t BucketLowerBound(size_t index);
  static uint64_t BucketUpperBound(size_t index);  // exclusive

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
};

/// Records the elapsed wall time of a scope into a histogram. A null
/// histogram, or metrics globally disabled at construction, skips both
/// clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(h), start_(h != nullptr && Enabled() ? NowNanos() : 0) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (start_ != 0) h_->Record(NowNanos() - start_);
  }

 private:
  Histogram* h_;
  uint64_t start_;
};

}  // namespace setdisc::obs
