#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace setdisc::obs {

namespace {
std::atomic<bool> g_enabled{true};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

size_t Counter::StripeIndex() {
  // Each thread claims a stripe once, round-robin; no hashing, no false
  // sharing between up-to-kStripes concurrent writers.
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return stripe;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  if (buckets.empty()) {
    buckets = other.buckets;
    return;
  }
  if (other.buckets.empty()) return;
  const size_t n = std::min(buckets.size(), other.buckets.size());
  for (size_t i = 0; i < n; ++i) buckets[i] += other.buckets[i];
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0 || buckets.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile sample, 1-based; q=0 means the minimum.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) {
      // Midpoint representative: exact for the unit buckets, otherwise
      // within half a bucket width of every sample that fell in it.
      const uint64_t lo = Histogram::BucketLowerBound(i);
      const uint64_t hi = Histogram::BucketUpperBound(i);
      return lo + (hi - lo - 1) / 2;
    }
  }
  // count said there were samples but the buckets disagree (torn snapshot
  // of a live histogram); report the largest bucket seen.
  for (size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] != 0) return Histogram::BucketLowerBound(i);
  }
  return 0;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  uint64_t count = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    const uint64_t b = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = b;
    count += b;
  }
  snap.count = count;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t Histogram::BucketLowerBound(size_t index) {
  if (index < kSubBuckets) return index;
  const size_t octave = (index - kSubBuckets) / kSubBuckets;
  const size_t sub = (index - kSubBuckets) % kSubBuckets;
  const int h = static_cast<int>(octave) + kSubBucketBits;
  return (uint64_t{1} << h) + (static_cast<uint64_t>(sub) << (h - kSubBucketBits));
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index + 1 >= kNumBuckets) return std::numeric_limits<uint64_t>::max();
  return BucketLowerBound(index + 1);
}

}  // namespace setdisc::obs
