#pragma once

/// \file event_log.h
/// The diagnostic side of request-journey tracing (journey.h):
///
///  * FlightRecorder — a process-wide fixed overwrite-oldest ring of
///    structured events (admission flips, effort-ladder moves, evictions,
///    protocol errors, server lifecycle). Each event is pre-rendered to a
///    text line at Record time, so the fatal-signal handler can dump the
///    tail with nothing but write(2) — no malloc, no locks, no formatting.
///    Dumpable as Chrome-trace instant events on SIGUSR1.
///
///  * ExemplarStore — a bounded ring of slow-step exemplars: the full
///    journey of any step whose service time (queue wait + execution)
///    crossed the --slow-ms threshold, kept for the versioned kStatsReply
///    and appended as JSONL to the --event-log file.
///
///  * Signal plumbing — SIGUSR1 sets a flag a serving loop polls
///    (ConsumeFlightDumpRequest); fatal signals write the pre-rendered
///    flight tail to stderr and re-raise.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/journey.h"
#include "obs/trace.h"

namespace setdisc::obs {

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

enum class FlightEventKind : uint8_t {
  kServerStart = 0,
  kServerDrain,
  kServerStop,
  kProtocolError,
  kAdmissionReject,
  kAdmissionClosed,
  kAdmissionResumed,
  kEffortDegrade,
  kEffortRecover,
  kPressureReap,
  kSessionEvicted,
  kSessionError,
  kSlowStep,
  kSessionSpilled,   ///< evicted/reaped with its store record retained
  kSessionResumed,   ///< rehydrated from the store (a=id, b=events replayed)
  kStoreDegraded,    ///< session store hit an I/O error and stopped logging
  kCustom,
};

/// Stable lowercase name ("admission_reject", ...); never nullptr.
const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  uint64_t ts_ns = 0;
  FlightEventKind kind = FlightEventKind::kCustom;
  int64_t a = 0;  ///< kind-specific (queue depth, old level, port, ...)
  int64_t b = 0;  ///< kind-specific (new level, count, ...)
  char detail[40] = {};
  /// Line rendered at Record time ("+123.456s admission_reject a=9 b=0\n"),
  /// what the fatal-signal tail writes verbatim.
  char text[96] = {};
};

class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder (capacity 1024). Always on — events are rare
  /// (state transitions, not per-step) and the ring is fixed memory.
  static FlightRecorder& Global();

  void Record(FlightEventKind kind, int64_t a = 0, int64_t b = 0,
              std::string_view detail = {});

  /// Oldest first.
  std::vector<FlightEvent> Snapshot() const;

  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// Writes the newest `max_events` pre-rendered lines to `fd` using only
  /// write(2) and relaxed atomic loads — async-signal-safe. Lines from a
  /// slot being overwritten at that instant may be garbled; acceptable in a
  /// crash dump.
  void DumpTail(int fd, size_t max_events) const;

 private:
  mutable std::mutex mu_;
  std::vector<FlightEvent> ring_;  // sized once in the constructor
  std::atomic<uint64_t> total_{0};
};

/// Chrome trace-event JSON of Global()'s snapshot: one instant event
/// ("ph":"i") per flight event, loadable in Perfetto next to the journey
/// spans.
std::string FlightChromeJson();

/// Writes FlightChromeJson() to `path` (truncating); false on I/O failure.
bool WriteFlightDump(const std::string& path);

// ---------------------------------------------------------------------------
// EventLog — JSONL sink
// ---------------------------------------------------------------------------

/// Append-only JSONL file (--event-log). Thread-safe; each Append is one
/// line, flushed so a crash loses at most the line being written.
class EventLog {
 public:
  static EventLog& Global();

  /// Opens (truncating) `path`; false if the file can't be created.
  bool Open(const std::string& path);
  void Close();
  bool is_open() const;

  /// Writes `json` (one object, no trailing newline) as one line. No-op
  /// when closed.
  void Append(std::string_view json);

 private:
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
};

// ---------------------------------------------------------------------------
// Slow-step exemplars
// ---------------------------------------------------------------------------

struct StepExemplar {
  TraceId trace;
  uint64_t session_id = 0;
  uint64_t ts_ns = 0;  ///< completion time (NowNanos timebase)
  uint32_t step = 0;
  uint8_t kind = 0;        ///< 0 = answer, 1 = verify, 2 = create
  uint8_t serve_path = 0;  ///< ServePath
  uint64_t total_ns = 0;   ///< step execution time
  uint64_t queue_wait_ns = 0;
  uint64_t phase_ns[kNumPhases] = {};
  char request[16] = {};  ///< wire request name ("answer", ...)
};

/// One exemplar as a single-line JSON object (the --event-log format).
std::string ExemplarJson(const StepExemplar& ex);

class ExemplarStore {
 public:
  static constexpr size_t kCapacity = 64;

  /// The process-wide store.
  static ExemplarStore& Global();

  /// Keeps the most recent kCapacity exemplars and appends each to
  /// EventLog::Global() when that is open.
  void Add(const StepExemplar& ex);

  /// Oldest first.
  std::vector<StepExemplar> Snapshot() const;

  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  std::vector<StepExemplar> ring_;
  std::atomic<uint64_t> total_{0};
};

// ---------------------------------------------------------------------------
// Request-journey completion
// ---------------------------------------------------------------------------

/// Closes out one request's journey after its pool job ran under `ctx`
/// (JourneyScope): emits the request span (decode_ns .. now) and its
/// queue-wait child (decode_ns .. start_ns) into Journey(), and — when
/// `slow_ns` > 0 and the step's service time (queue wait + execution)
/// reached it — captures a StepExemplar. `name` is the wire request name.
void FinishRequestJourney(JourneyContext& ctx, const char* name,
                          uint64_t decode_ns, uint64_t start_ns,
                          uint64_t slow_ns);

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

/// SIGUSR1 handler that just sets a flag; a serving loop polls
/// ConsumeFlightDumpRequest() and performs the (non-signal-safe) JSON dump
/// itself.
void InstallFlightDumpSignalHandler();
bool ConsumeFlightDumpRequest();

/// SIGSEGV/SIGBUS/SIGFPE/SIGABRT handler: writes the pre-rendered flight
/// tail to stderr with write(2) only, then restores the default handler and
/// re-raises so the process still dies (and dumps core) normally.
void InstallFatalTailHandler();

}  // namespace setdisc::obs
