#pragma once

/// \file journey.h
/// Request-journey tracing: the per-request layer on top of the aggregate
/// sensors in metrics.h/trace.h. A *journey* is the span tree of one request
/// — request span, queue-wait child, step child, phase grandchildren — tied
/// together by a 128-bit trace id that can cross the wire (see the
/// CreateSession trace-context extension in net/protocol.h), so the same id
/// later stitches spans from remote shard processes into one tree.
///
/// Spans land in a process-wide lock-free bounded ring (JourneyRing): Push
/// is a ticket fetch_add plus ~25 relaxed atomic word stores guarded by a
/// per-slot seqlock, so the serving hot path never takes a lock and readers
/// (Snapshot, the --trace-export dump) skip slots they catch mid-write.
/// Under extreme wrap contention (more concurrent writers than ring
/// capacity apart) a slot can be abandoned — acceptable for a diagnostic
/// ring, and the seqlock keeps every *returned* span internally consistent.
///
/// Trace context flows through a thread-local JourneyContext installed by
/// the layer that knows the request boundary (the server's pool-job wrapper,
/// or a bench/test harness) and filled in by the layers below it: the
/// SessionManager contributes the session's stored trace id, the session's
/// RecordStep emits the step span with its PhaseAccum breakdown attached as
/// child spans and copies the step's totals back into the context so the
/// wrapper can make slow-step exemplar decisions (see event_log.h).

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace setdisc::obs {

// ---------------------------------------------------------------------------
// Identifiers
// ---------------------------------------------------------------------------

/// 128-bit trace id. {0, 0} means "no trace" everywhere (never generated).
struct TraceId {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool valid() const { return (hi | lo) != 0; }
  friend bool operator==(const TraceId& a, const TraceId& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

/// A fresh random-ish 128-bit id: a per-thread splitmix64 stream seeded from
/// std::random_device plus a process counter. Never returns {0, 0}.
TraceId MakeTraceId();

/// Process-unique nonzero span id (plain atomic counter).
uint64_t NextSpanId();

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

inline constexpr size_t kMaxSpanName = 16;        // incl. NUL
inline constexpr size_t kMaxSpanAnnotations = 4;
inline constexpr size_t kMaxAnnotationKey = 12;   // incl. NUL
inline constexpr size_t kMaxAnnotationValue = 20; // incl. NUL

/// One span, fixed-size and trivially copyable so the ring can move it with
/// relaxed word stores. Strings are NUL-terminated and silently truncated to
/// their field size; annotations beyond kMaxSpanAnnotations are dropped.
struct alignas(8) Span {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  ///< 0 = root span of its trace
  uint64_t start_ns = 0;   ///< obs::NowNanos() timebase
  uint64_t duration_ns = 0;
  char name[kMaxSpanName] = {};
  uint8_t num_annotations = 0;
  uint8_t pad_[7] = {};
  char ann_key[kMaxSpanAnnotations][kMaxAnnotationKey] = {};
  char ann_value[kMaxSpanAnnotations][kMaxAnnotationValue] = {};

  void SetName(std::string_view n);
  void Annotate(std::string_view key, std::string_view value);
  void AnnotateU64(std::string_view key, uint64_t value);
};

static_assert(std::is_trivially_copyable_v<Span>);
static_assert(sizeof(Span) % sizeof(uint64_t) == 0);

// ---------------------------------------------------------------------------
// JourneyRing — lock-free overwrite-oldest span ring
// ---------------------------------------------------------------------------

class JourneyRing {
 public:
  /// Capacity is clamped to >= 1. Memory is allocated once here; Push never
  /// allocates.
  explicit JourneyRing(size_t capacity);

  JourneyRing(const JourneyRing&) = delete;
  JourneyRing& operator=(const JourneyRing&) = delete;

  /// Records a span, overwriting the oldest when full. Lock-free: one
  /// fetch_add ticket plus relaxed word stores under a per-slot seqlock.
  void Push(const Span& span);

  /// Every readable span, oldest-ticket first. Slots caught mid-write (or
  /// overwritten while being read) are skipped, never returned torn.
  std::vector<Span> Snapshot() const;

  /// Total spans ever pushed (>= capacity means the ring has wrapped).
  uint64_t total() const { return next_.load(std::memory_order_relaxed); }

  size_t capacity() const { return slots_.size(); }

 private:
  static constexpr size_t kSpanWords = sizeof(Span) / sizeof(uint64_t);

  struct Slot {
    /// Seqlock: odd while a writer is copying, even when stable. Writers
    /// stamp ticket-derived values so a reader also detects overwrites that
    /// completed entirely within its read.
    std::atomic<uint64_t> seq{0};
    std::atomic<uint64_t> words[kSpanWords];
  };

  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

/// The process-wide journey ring (capacity 8192) — what --trace-export
/// dumps and the server/session layers push into.
JourneyRing& Journey();

/// Journey kill switch, default off: nothing records spans until a serving
/// entry point (CLI --trace-export/--slow-ms/--event-log, bench_obs, tests)
/// turns it on. Independent of the metrics switch, but span emission also
/// requires obs::Enabled() on the server path.
bool JourneyEnabled();
void SetJourneyEnabled(bool enabled);

// ---------------------------------------------------------------------------
// JourneyContext — per-request trace context
// ---------------------------------------------------------------------------

/// Thread-local context installed for the duration of one request. The
/// installer (server pool job, bench loop) sets `trace` (possibly invalid)
/// and `request_span`; the layers underneath fill the rest:
///  * SessionManager copies the session's stored trace id into `trace` when
///    the request didn't carry one, and stamps `session_id`;
///  * BasicDiscoverySession::RecordStep emits the step + phase spans and
///    copies the step's totals back for exemplar decisions.
struct JourneyContext {
  TraceId trace;
  uint64_t request_span = 0;
  uint64_t session_id = 0;

  // Filled by the step that ran under this context (last one wins).
  bool have_step = false;
  uint8_t step_kind = 0;  ///< 0 = answer, 1 = verify (TraceEvent convention)
  uint32_t step_index = 0;
  uint64_t step_span = 0;
  uint64_t step_total_ns = 0;
  PhaseAccum step_accum;
};

namespace internal {
inline thread_local JourneyContext* t_journey = nullptr;
}  // namespace internal

inline JourneyContext* CurrentJourney() { return internal::t_journey; }

/// Installs `ctx` (may be nullptr = detach) for the current scope; restores
/// the previous context on destruction. Nests.
class JourneyScope {
 public:
  explicit JourneyScope(JourneyContext* ctx) : prev_(internal::t_journey) {
    internal::t_journey = ctx;
  }
  ~JourneyScope() { internal::t_journey = prev_; }

  JourneyScope(const JourneyScope&) = delete;
  JourneyScope& operator=(const JourneyScope&) = delete;

 private:
  JourneyContext* prev_;
};

// ---------------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------------

/// Emits the step span for the active context into Journey(), with one child
/// span per phase that consumed >= 1us (tinier phases are noise and ring
/// pressure; their time is still in the step span). Phases have durations
/// but not absolute offsets, so children are laid out back-to-back from the
/// step's start — the breakdown is exact, the overlap approximate. Ensures
/// ctx.trace is valid (generates an id if the whole stack had none) and
/// copies kind/total/accum back into ctx for the exemplar decision upstream.
void EmitStepSpans(JourneyContext& ctx, uint8_t kind, uint32_t step_index,
                   uint32_t entity, uint64_t total_ns, const PhaseAccum& accum);

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

/// Renders spans as a complete Chrome trace-event JSON document (loadable in
/// Perfetto / chrome://tracing): one "X" (complete) event per span, ts/dur
/// in microseconds, tid derived from the trace id so one request's spans
/// share a track, span/parent ids and annotations in "args".
std::string SpansToChromeJson(const std::vector<Span>& spans);

/// SpansToChromeJson over the global ring's snapshot.
std::string JourneyChromeJson();

/// Writes JourneyChromeJson() to `path` (truncating). Returns false on I/O
/// failure.
bool WriteJourneyTrace(const std::string& path);

}  // namespace setdisc::obs
