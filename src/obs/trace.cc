#include "obs/trace.h"

#include "obs/registry.h"

namespace setdisc::obs {

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kCacheLookup: return "cache_lookup";
    case Phase::kCount: return "count";
    case Phase::kOrder: return "order";
    case Phase::kShardMerge: return "shard_merge";
    case Phase::kEmit: return "emit";
    case Phase::kSelect: return "select";
  }
  return "unknown";
}

const char* ServePathName(ServePath path) {
  switch (path) {
    case ServePath::kUnknown: return "unknown";
    case ServePath::kFull: return "full";
    case ServePath::kDelta: return "delta";
    case ServePath::kReemit: return "reemit";
    case ServePath::kCacheHit: return "cache_hit";
  }
  return "unknown";
}

void RecordStepPhases(const PhaseAccum& accum) {
  if (!Enabled()) return;
  // One registry lookup per phase for the process lifetime.
  static Histogram* const phase_hists[kNumPhases] = {
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kCacheLookup)}}),
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kCount)}}),
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kOrder)}}),
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kShardMerge)}}),
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kEmit)}}),
      MetricsRegistry::Default().GetHistogram(
          "setdisc_step_phase_ns", {{"phase", PhaseName(Phase::kSelect)}}),
  };
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (accum.ns[i] != 0) phase_hists[i]->Record(accum.ns[i]);
  }
}

}  // namespace setdisc::obs
