#include "obs/event_log.h"

#include <csignal>
#include <cstring>

#include <unistd.h>

#include <algorithm>

namespace setdisc::obs {

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kServerStart: return "server_start";
    case FlightEventKind::kServerDrain: return "server_drain";
    case FlightEventKind::kServerStop: return "server_stop";
    case FlightEventKind::kProtocolError: return "protocol_error";
    case FlightEventKind::kAdmissionReject: return "admission_reject";
    case FlightEventKind::kAdmissionClosed: return "admission_closed";
    case FlightEventKind::kAdmissionResumed: return "admission_resumed";
    case FlightEventKind::kEffortDegrade: return "effort_degrade";
    case FlightEventKind::kEffortRecover: return "effort_recover";
    case FlightEventKind::kPressureReap: return "pressure_reap";
    case FlightEventKind::kSessionEvicted: return "session_evicted";
    case FlightEventKind::kSessionError: return "session_error";
    case FlightEventKind::kSlowStep: return "slow_step";
    case FlightEventKind::kSessionSpilled: return "session_spilled";
    case FlightEventKind::kSessionResumed: return "session_resumed";
    case FlightEventKind::kStoreDegraded: return "store_degraded";
    case FlightEventKind::kCustom: return "custom";
  }
  return "custom";
}

FlightRecorder::FlightRecorder(size_t capacity)
    : ring_(std::max<size_t>(capacity, 1)) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder(1024);
  return *recorder;
}

void FlightRecorder::Record(FlightEventKind kind, int64_t a, int64_t b,
                            std::string_view detail) {
  FlightEvent ev;
  ev.ts_ns = NowNanos();
  ev.kind = kind;
  ev.a = a;
  ev.b = b;
  const size_t dn = std::min(detail.size(), sizeof(ev.detail) - 1);
  if (dn != 0) std::memcpy(ev.detail, detail.data(), dn);
  ev.detail[dn] = '\0';
  // Pre-render the crash-tail line now, where snprintf is safe.
  std::snprintf(ev.text, sizeof(ev.text), "+%llu.%03llus %s a=%lld b=%lld %s\n",
                static_cast<unsigned long long>(ev.ts_ns / 1000000000ULL),
                static_cast<unsigned long long>((ev.ts_ns / 1000000ULL) % 1000),
                FlightEventKindName(kind), static_cast<long long>(a),
                static_cast<long long>(b), ev.detail);
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t ticket = total_.fetch_add(1, std::memory_order_relaxed);
  ring_[ticket % ring_.size()] = ev;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = total_.load(std::memory_order_relaxed);
  const size_t cap = ring_.size();
  const uint64_t count = std::min<uint64_t>(n, cap);
  std::vector<FlightEvent> out;
  out.reserve(count);
  for (uint64_t i = n - count; i < n; ++i) out.push_back(ring_[i % cap]);
  return out;
}

void FlightRecorder::DumpTail(int fd, size_t max_events) const {
  // Deliberately lock-free: this runs from a fatal-signal handler. The
  // ring_ vector never reallocates after construction, so indexing is safe;
  // a line being overwritten right now may print garbled — fine in a crash.
  const uint64_t n = total_.load(std::memory_order_relaxed);
  const size_t cap = ring_.size();
  const uint64_t count = std::min<uint64_t>(std::min<uint64_t>(n, cap),
                                            max_events);
  for (uint64_t i = n - count; i < n; ++i) {
    const char* line = ring_[i % cap].text;
    size_t len = 0;
    while (len < sizeof(FlightEvent{}.text) && line[len] != '\0') ++len;
    ssize_t ignored = ::write(fd, line, len);
    (void)ignored;
  }
}

std::string FlightChromeJson() {
  const std::vector<FlightEvent> events = FlightRecorder::Global().Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  char buf[192];
  for (const FlightEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,"
                  "\"tid\":0,\"ts\":%.3f,\"args\":{\"a\":%lld,\"b\":%lld}}",
                  FlightEventKindName(ev.kind),
                  static_cast<double>(ev.ts_ns) / 1000.0,
                  static_cast<long long>(ev.a), static_cast<long long>(ev.b));
    out += buf;
  }
  out += "]}";
  return out;
}

bool WriteFlightDump(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string json = FlightChromeJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return (std::fclose(f) == 0) && ok;
}

// ---------------------------------------------------------------------------
// EventLog
// ---------------------------------------------------------------------------

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

bool EventLog::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = f;
  return true;
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = nullptr;
}

bool EventLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void EventLog::Append(std::string_view json) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  std::fwrite(json.data(), 1, json.size(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

// ---------------------------------------------------------------------------
// Exemplars
// ---------------------------------------------------------------------------

std::string ExemplarJson(const StepExemplar& ex) {
  char buf[512];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"trace_id\":\"%016llx%016llx\",\"session\":%llu,\"request\":\"%s\","
      "\"step\":%u,\"kind\":%u,\"path\":\"%s\",\"ts_ns\":%llu,"
      "\"total_ns\":%llu,\"queue_wait_ns\":%llu,\"phases\":{",
      static_cast<unsigned long long>(ex.trace.hi),
      static_cast<unsigned long long>(ex.trace.lo),
      static_cast<unsigned long long>(ex.session_id), ex.request, ex.step,
      ex.kind,
      ServePathName(static_cast<ServePath>(ex.serve_path <= 4 ? ex.serve_path
                                                              : 0)),
      static_cast<unsigned long long>(ex.ts_ns),
      static_cast<unsigned long long>(ex.total_ns),
      static_cast<unsigned long long>(ex.queue_wait_ns));
  std::string out(buf, n > 0 ? static_cast<size_t>(n) : 0);
  for (size_t i = 0; i < kNumPhases; ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", i == 0 ? "" : ",",
                  PhaseName(static_cast<Phase>(i)),
                  static_cast<unsigned long long>(ex.phase_ns[i]));
    out += buf;
  }
  out += "}}";
  return out;
}

ExemplarStore& ExemplarStore::Global() {
  static ExemplarStore* store = new ExemplarStore();
  return *store;
}

void ExemplarStore::Add(const StepExemplar& ex) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.empty()) ring_.resize(kCapacity);
    const uint64_t ticket = total_.fetch_add(1, std::memory_order_relaxed);
    ring_[ticket % kCapacity] = ex;
  }
  EventLog& log = EventLog::Global();
  if (log.is_open()) log.Append(ExemplarJson(ex));
}

std::vector<StepExemplar> ExemplarStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = total_.load(std::memory_order_relaxed);
  const uint64_t count = std::min<uint64_t>(n, kCapacity);
  std::vector<StepExemplar> out;
  out.reserve(count);
  for (uint64_t i = n - count; i < n; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Request-journey completion
// ---------------------------------------------------------------------------

void FinishRequestJourney(JourneyContext& ctx, const char* name,
                          uint64_t decode_ns, uint64_t start_ns,
                          uint64_t slow_ns) {
  const uint64_t end_ns = NowNanos();
  if (!ctx.trace.valid()) ctx.trace = MakeTraceId();
  if (ctx.request_span == 0) ctx.request_span = NextSpanId();
  const uint64_t queue_wait_ns = start_ns >= decode_ns ? start_ns - decode_ns : 0;

  JourneyRing& ring = Journey();
  Span req;
  req.trace_hi = ctx.trace.hi;
  req.trace_lo = ctx.trace.lo;
  req.span_id = ctx.request_span;
  req.parent_id = 0;
  req.start_ns = decode_ns;
  req.duration_ns = end_ns >= decode_ns ? end_ns - decode_ns : 0;
  char req_name[kMaxSpanName];
  std::snprintf(req_name, sizeof(req_name), "req:%s", name);
  req.SetName(req_name);
  if (ctx.session_id != 0) req.AnnotateU64("session", ctx.session_id);
  ring.Push(req);

  Span wait;
  wait.trace_hi = ctx.trace.hi;
  wait.trace_lo = ctx.trace.lo;
  wait.span_id = NextSpanId();
  wait.parent_id = ctx.request_span;
  wait.start_ns = decode_ns;
  wait.duration_ns = queue_wait_ns;
  wait.SetName("queue_wait");
  ring.Push(wait);

  if (slow_ns > 0 && ctx.have_step &&
      ctx.step_total_ns + queue_wait_ns >= slow_ns) {
    StepExemplar ex;
    ex.trace = ctx.trace;
    ex.session_id = ctx.session_id;
    ex.ts_ns = end_ns;
    ex.step = ctx.step_index;
    ex.kind = ctx.step_kind;
    ex.serve_path = ctx.step_accum.serve_path;
    ex.total_ns = ctx.step_total_ns;
    ex.queue_wait_ns = queue_wait_ns;
    for (size_t i = 0; i < kNumPhases; ++i) ex.phase_ns[i] = ctx.step_accum.ns[i];
    const size_t rn = std::min(std::strlen(name), sizeof(ex.request) - 1);
    std::memcpy(ex.request, name, rn);
    ex.request[rn] = '\0';
    ExemplarStore::Global().Add(ex);
    FlightRecorder::Global().Record(
        FlightEventKind::kSlowStep,
        static_cast<int64_t>((ctx.step_total_ns + queue_wait_ns) / 1000000),
        static_cast<int64_t>(ctx.session_id), name);
  }
}

// ---------------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------------

namespace {

volatile std::sig_atomic_t g_dump_requested = 0;

void HandleDumpSignal(int) { g_dump_requested = 1; }

void HandleFatalSignal(int sig) {
  static const char kBanner[] = "\n--- setdisc flight recorder tail ---\n";
  ssize_t ignored = ::write(STDERR_FILENO, kBanner, sizeof(kBanner) - 1);
  (void)ignored;
  FlightRecorder::Global().DumpTail(STDERR_FILENO, 32);
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void InstallFlightDumpSignalHandler() { std::signal(SIGUSR1, HandleDumpSignal); }

bool ConsumeFlightDumpRequest() {
  if (g_dump_requested == 0) return false;
  g_dump_requested = 0;
  return true;
}

void InstallFatalTailHandler() {
  // Force the static recorder into existence now; its lazy construction is
  // not async-signal-safe, the handler's use of it afterwards is.
  FlightRecorder::Global();
  std::signal(SIGSEGV, HandleFatalSignal);
  std::signal(SIGBUS, HandleFatalSignal);
  std::signal(SIGFPE, HandleFatalSignal);
  std::signal(SIGABRT, HandleFatalSignal);
}

}  // namespace setdisc::obs
