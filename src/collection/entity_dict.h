#pragma once

/// \file entity_dict.h
/// String interning for entity names.
///
/// The algorithms operate on dense EntityIds only; the dictionary is an
/// optional sidecar so that examples and interactive sessions can display
/// human-readable names (e.g. web-table cell values, disease symptoms).

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "collection/types.h"
#include "util/status.h"

namespace setdisc {

/// Bidirectional mapping between entity names and dense EntityIds.
class EntityDict {
 public:
  /// Returns the id for `name`, interning it if unseen.
  EntityId Intern(std::string_view name) {
    auto it = ids_.find(std::string(name));
    if (it != ids_.end()) return it->second;
    EntityId id = static_cast<EntityId>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id for `name` or kNoEntity if never interned.
  EntityId Lookup(std::string_view name) const {
    auto it = ids_.find(std::string(name));
    return it == ids_.end() ? kNoEntity : it->second;
  }

  /// Returns the name for `id`; id must have been interned.
  const std::string& Name(EntityId id) const {
    SETDISC_CHECK(id < names_.size());
    return names_[id];
  }

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, EntityId> ids_;
};

}  // namespace setdisc
