#pragma once

/// \file types.h
/// Fundamental identifier types shared across the library.
///
/// Entities (the paper's universe members / example tuples) and sets are both
/// referred to by dense 32-bit ids. Density matters: the hot counting loops
/// use scratch arrays indexed by id (see entity_counter.h).

#include <cstdint>
#include <limits>

namespace setdisc {

/// Identifier of an entity (a member of the universe U = union of all sets).
using EntityId = uint32_t;

/// Identifier of a set in a collection.
using SetId = uint32_t;

/// Sentinel for "no entity" (e.g. no informative entity available).
inline constexpr EntityId kNoEntity = std::numeric_limits<EntityId>::max();

/// Sentinel for "no set".
inline constexpr SetId kNoSet = std::numeric_limits<SetId>::max();

}  // namespace setdisc
