#include "collection/set_collection.h"

#include <algorithm>
#include <unordered_map>

#include "collection/fingerprint.h"

namespace setdisc {

namespace {

/// 64-bit content hash of a sorted element vector (FNV-1a over ids).
uint64_t HashElements(const std::vector<EntityId>& elems) {
  uint64_t h = 1469598103934665603ULL;
  for (EntityId e : elems) {
    h ^= e;
    h *= 1099511628211ULL;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

size_t SetCollectionBuilder::AddSet(std::vector<EntityId> elements,
                                    std::string label) {
  pending_.push_back(std::move(elements));
  labels_.push_back(std::move(label));
  return pending_.size() - 1;
}

size_t SetCollectionBuilder::AddSetNamed(const std::vector<std::string>& names,
                                         std::string label) {
  used_names_ = true;
  std::vector<EntityId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) ids.push_back(dict_.Intern(n));
  return AddSet(std::move(ids), std::move(label));
}

SetCollection SetCollectionBuilder::Build(std::vector<SetId>* original_to_final) {
  SetCollection out;
  if (original_to_final != nullptr) {
    original_to_final->assign(pending_.size(), kNoSet);
  }

  // Deduplicate by content hash with full-equality confirmation.
  std::unordered_map<uint64_t, std::vector<SetId>> by_hash;
  by_hash.reserve(pending_.size() * 2);

  std::vector<bool> seen_entity;
  for (size_t i = 0; i < pending_.size(); ++i) {
    auto& elems = pending_[i];
    std::sort(elems.begin(), elems.end());
    elems.erase(std::unique(elems.begin(), elems.end()), elems.end());

    uint64_t h = HashElements(elems);
    SetId final_id = kNoSet;
    auto it = by_hash.find(h);
    if (it != by_hash.end()) {
      for (SetId cand : it->second) {
        auto existing = std::span<const EntityId>(
            out.elements_.data() + out.offsets_[cand],
            out.elements_.data() + out.offsets_[cand + 1]);
        if (existing.size() == elems.size() &&
            std::equal(existing.begin(), existing.end(), elems.begin())) {
          final_id = cand;
          break;
        }
      }
    }
    if (final_id == kNoSet) {
      final_id = static_cast<SetId>(out.offsets_.size() - 1);
      out.elements_.insert(out.elements_.end(), elems.begin(), elems.end());
      out.offsets_.push_back(out.elements_.size());
      out.labels_.push_back(labels_[i]);
      by_hash[h].push_back(final_id);
      for (EntityId e : elems) {
        if (e >= out.universe_size_) out.universe_size_ = e + 1;
        if (e >= seen_entity.size()) seen_entity.resize(e + 1, false);
        if (!seen_entity[e]) {
          seen_entity[e] = true;
          ++out.num_distinct_;
        }
      }
    } else if (out.labels_[final_id].empty() && !labels_[i].empty()) {
      // Keep the first non-empty label for a deduplicated set.
      out.labels_[final_id] = labels_[i];
    }
    if (original_to_final != nullptr) (*original_to_final)[i] = final_id;
  }

  if (used_names_) {
    out.dict_ = std::make_shared<EntityDict>(std::move(dict_));
  }
  // Content fingerprint, fixed for the collection's lifetime so reads never
  // race (the collection is shared read-only across sessions and threads).
  {
    uint64_t h = kFingerprintSeed;
    for (size_t offset : out.offsets_) h = FingerprintAppend(h, offset);
    for (EntityId e : out.elements_) h = FingerprintAppend(h, e);
    out.fingerprint_ = h;
  }
  // Build() consumes the builder: reset to a pristine state so reuse starts
  // a fresh collection instead of silently reading a moved-from dictionary.
  pending_.clear();
  labels_.clear();
  dict_ = EntityDict();
  used_names_ = false;
  return out;
}

bool SetCollection::Contains(SetId s, EntityId e) const {
  auto elems = set(s);
  return std::binary_search(elems.begin(), elems.end(), e);
}

std::string SetCollection::EntityName(EntityId e) const {
  if (dict_ != nullptr && e < dict_->size()) return dict_->Name(e);
  return "e" + std::to_string(e);
}

}  // namespace setdisc
