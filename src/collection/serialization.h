#pragma once

/// \file serialization.h
/// Persistence for set collections.
///
/// Two formats:
///  * a compact binary format (magic + CSR arrays) for benchmark caching, and
///  * a line-oriented text format (one set per line, whitespace-separated
///    entity names) matching how web-table corpora are usually distributed.

#include <string>

#include "collection/set_collection.h"
#include "util/status.h"

namespace setdisc {

/// Writes `collection` to `path` in the binary format. Labels and the name
/// dictionary are not persisted (ids only).
Status SaveCollectionBinary(const SetCollection& collection,
                            const std::string& path);

/// Reads a collection previously written by SaveCollectionBinary.
Status LoadCollectionBinary(const std::string& path, SetCollection* out);

/// Writes one set per line using entity names (or "e<id>").
Status SaveCollectionText(const SetCollection& collection,
                          const std::string& path);

/// Reads a text collection: each non-empty line is a set of whitespace-
/// separated entity names, interned into a fresh dictionary. Duplicate sets
/// collapse. Lines starting with '#' are comments.
Status LoadCollectionText(const std::string& path, SetCollection* out);

}  // namespace setdisc
