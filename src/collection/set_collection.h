#pragma once

/// \file set_collection.h
/// Immutable collection of unique finite sets — the paper's input object.
///
/// Storage is CSR (one offsets array, one concatenated sorted-elements array),
/// which keeps the hot loops — entity counting and membership tests — cache
/// friendly. The builder removes duplicate elements within each set and
/// duplicate sets across the collection ("Without loss of generality, we
/// assume the sets are all unique" — §3).

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "collection/entity_dict.h"
#include "collection/types.h"
#include "util/status.h"

namespace setdisc {

class SetCollection;

/// Accumulates sets and produces a deduplicated, sorted SetCollection.
class SetCollectionBuilder {
 public:
  SetCollectionBuilder() = default;

  /// Adds a set of entity ids (duplicates within the set are removed at
  /// Build time). Returns the provisional index of the added set.
  size_t AddSet(std::vector<EntityId> elements,
                std::string label = std::string());

  /// Adds a set of entity names, interning them in the builder's dictionary.
  size_t AddSetNamed(const std::vector<std::string>& names,
                     std::string label = std::string());

  /// Number of sets added so far (before dedup).
  size_t num_pending() const { return pending_.size(); }

  /// Builds the immutable collection. Identical sets collapse into one; if
  /// `original_to_final` is non-null it receives, for every AddSet call, the
  /// final SetId its set mapped to.
  ///
  /// Build() consumes the builder's contents and resets it to the
  /// just-constructed state: pending sets, labels, and the name dictionary
  /// are all cleared, so a reused builder starts an independent collection
  /// (entity ids interned for a previous Build are NOT preserved).
  SetCollection Build(std::vector<SetId>* original_to_final = nullptr);

  /// Access to the name dictionary for callers that interleave interning
  /// with set construction.
  EntityDict& dict() { return dict_; }

 private:
  std::vector<std::vector<EntityId>> pending_;
  std::vector<std::string> labels_;
  EntityDict dict_;
  bool used_names_ = false;
};

/// An immutable collection of n unique sets over a universe of m entities.
class SetCollection {
 public:
  SetCollection() = default;

  /// Number of sets n.
  SetId num_sets() const { return static_cast<SetId>(offsets_.size() - 1); }

  /// Universe size m' = max entity id + 1. Note: this is an id-space bound;
  /// the number of *distinct* entities actually present is
  /// num_distinct_entities().
  EntityId universe_size() const { return universe_size_; }

  /// Number of distinct entities appearing in at least one set.
  EntityId num_distinct_entities() const { return num_distinct_; }

  /// Total number of (set, entity) incidences.
  size_t total_elements() const { return elements_.size(); }

  /// The sorted elements of set `s`.
  std::span<const EntityId> set(SetId s) const {
    SETDISC_CHECK(s < num_sets());
    return {elements_.data() + offsets_[s],
            elements_.data() + offsets_[s + 1]};
  }

  size_t set_size(SetId s) const {
    SETDISC_CHECK(s < num_sets());
    return offsets_[s + 1] - offsets_[s];
  }

  /// True iff entity `e` is a member of set `s` (binary search).
  bool Contains(SetId s, EntityId e) const;

  /// Optional human-readable label of set `s` (may be empty).
  const std::string& label(SetId s) const {
    SETDISC_CHECK(s < labels_.size());
    return labels_[s];
  }

  /// Optional entity-name dictionary; nullptr when sets were built from raw
  /// ids.
  const EntityDict* dict() const { return dict_.get(); }

  /// Name of entity `e` — the interned name when a dictionary exists, else
  /// "e<id>".
  std::string EntityName(EntityId e) const;

  /// Content fingerprint (set boundaries + elements), computed once at
  /// Build()/load time, O(1) to read and safe to read concurrently. Set and
  /// entity ids are dense per collection, so id-based keys (sub-collection
  /// fingerprints) collide across collections; cross-collection caches mix
  /// this in to tell them apart (service/selection_cache.h). Identical
  /// content — e.g. the same file reloaded — fingerprints identically.
  uint64_t Fingerprint() const { return fingerprint_; }

 private:
  friend class SetCollectionBuilder;
  friend Status LoadCollectionBinary(const std::string& path, SetCollection* out);

  std::vector<size_t> offsets_ = {0};
  std::vector<EntityId> elements_;
  std::vector<std::string> labels_;
  EntityId universe_size_ = 0;
  EntityId num_distinct_ = 0;
  uint64_t fingerprint_ = 0;
  std::shared_ptr<EntityDict> dict_;
};

}  // namespace setdisc
