#include "collection/sub_collection.h"

#include <numeric>

namespace setdisc {

SubCollection SubCollection::Full(const SetCollection* collection) {
  std::vector<SetId> ids(collection->num_sets());
  std::iota(ids.begin(), ids.end(), 0);
  return SubCollection(collection, std::move(ids));
}

std::pair<SubCollection, SubCollection> SubCollection::Partition(
    EntityId e) const {
  std::vector<SetId> in, out;
  for (SetId s : ids_) {
    if (collection_->Contains(s, e)) {
      in.push_back(s);
    } else {
      out.push_back(s);
    }
  }
  return {SubCollection(collection_, std::move(in)),
          SubCollection(collection_, std::move(out))};
}

size_t SubCollection::CountContaining(EntityId e) const {
  size_t c = 0;
  for (SetId s : ids_) c += collection_->Contains(s, e) ? 1 : 0;
  return c;
}

size_t SubCollection::TotalElements() const {
  size_t total = 0;
  for (SetId s : ids_) total += collection_->set_size(s);
  return total;
}

}  // namespace setdisc
