#include "collection/sub_collection.h"

#include <numeric>

#include "collection/fingerprint.h"

namespace setdisc {

SubCollection SubCollection::Full(const SetCollection* collection) {
  std::vector<SetId> ids(collection->num_sets());
  std::iota(ids.begin(), ids.end(), 0);
  return SubCollection(collection, std::move(ids));
}

std::pair<SubCollection, SubCollection> SubCollection::Partition(
    EntityId e, bool derive_fingerprints) const {
  // On request, and when this view's fingerprint has been computed, derive
  // both children's fingerprints in the same pass — the ids stream by here
  // anyway, which is what keeps Fingerprint() O(1) along a narrowing chain.
  // Opt-in so partition-heavy callers that never read fingerprints (the
  // lookahead recursion) skip the per-id mixing entirely.
  const bool track = derive_fingerprints && fingerprint_valid_;
  uint64_t h_in = kFingerprintSeed, h_out = kFingerprintSeed;
  std::vector<SetId> in, out;
  for (SetId s : ids_) {
    if (collection_->Contains(s, e)) {
      in.push_back(s);
      if (track) h_in = FingerprintAppend(h_in, s);
    } else {
      out.push_back(s);
      if (track) h_out = FingerprintAppend(h_out, s);
    }
  }
  SubCollection first(collection_, std::move(in));
  SubCollection second(collection_, std::move(out));
  if (track) {
    first.fingerprint_ = h_in;
    first.fingerprint_valid_ = true;
    second.fingerprint_ = h_out;
    second.fingerprint_valid_ = true;
  }
  return {std::move(first), std::move(second)};
}

size_t SubCollection::CountContaining(EntityId e) const {
  size_t c = 0;
  for (SetId s : ids_) c += collection_->Contains(s, e) ? 1 : 0;
  return c;
}

size_t SubCollection::TotalElements() const {
  size_t total = 0;
  for (SetId s : ids_) total += collection_->set_size(s);
  return total;
}

uint64_t SubCollection::Fingerprint() const {
  if (!fingerprint_valid_) {
    uint64_t h = kFingerprintSeed;
    for (SetId s : ids_) h = FingerprintAppend(h, s);
    fingerprint_ = h;
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

}  // namespace setdisc
