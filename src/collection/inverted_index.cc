#include "collection/inverted_index.h"

#include <algorithm>
#include <numeric>

namespace setdisc {

InvertedIndex::InvertedIndex(const SetCollection& collection) {
  num_entities_ = collection.universe_size();
  num_sets_ = collection.num_sets();

  // Counting pass.
  std::vector<size_t> freq(num_entities_ + 1, 0);
  for (SetId s = 0; s < num_sets_; ++s) {
    for (EntityId e : collection.set(s)) ++freq[e];
  }
  offsets_.assign(num_entities_ + 1, 0);
  for (EntityId e = 0; e < num_entities_; ++e) {
    offsets_[e + 1] = offsets_[e] + freq[e];
  }
  sets_.resize(offsets_[num_entities_]);

  // Fill pass; iterating sets in increasing id order keeps postings sorted.
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (SetId s = 0; s < num_sets_; ++s) {
    for (EntityId e : collection.set(s)) sets_[cursor[e]++] = s;
  }
}

std::vector<SetId> InvertedIndex::SetsContainingAll(
    std::span<const EntityId> entities) const {
  if (entities.empty()) {
    std::vector<SetId> all(num_sets_);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  // Start from the rarest entity to keep intermediate results small.
  EntityId rarest = entities[0];
  for (EntityId e : entities) {
    if (Frequency(e) < Frequency(rarest)) rarest = e;
  }
  auto base = Postings(rarest);
  std::vector<SetId> result(base.begin(), base.end());
  for (EntityId e : entities) {
    if (e == rarest || result.empty()) continue;
    auto post = Postings(e);
    std::vector<SetId> next;
    next.reserve(std::min(result.size(), post.size()));
    std::set_intersection(result.begin(), result.end(), post.begin(), post.end(),
                          std::back_inserter(next));
    result.swap(next);
  }
  return result;
}

}  // namespace setdisc
