#include "collection/inverted_index.h"

#include <algorithm>
#include <numeric>

namespace setdisc {

namespace {

/// Length ratio past which the intersection switches from the linear
/// two-pointer merge to galloping through the longer list. Galloping costs
/// O(small * log(big/small)); the linear scan costs O(small + big). At 8x
/// skew the scan already reads ~8 elements per emitted candidate, while the
/// gallop's probe sequence is ~2 log2(gap) — comfortably ahead and widening
/// with the skew.
constexpr size_t kGallopSkew = 8;

/// First index i in [from, v.size()) with v[i] >= x: exponential probe to
/// bracket x, then binary search inside the bracket.
size_t GallopLowerBound(std::span<const SetId> v, size_t from, SetId x) {
  if (from >= v.size() || v[from] >= x) return from;
  size_t bound = 1;  // invariant: v[from + bound / 2] < x
  while (from + bound < v.size() && v[from + bound] < x) bound *= 2;
  size_t lo = from + bound / 2 + 1;
  size_t hi = std::min(from + bound + 1, v.size());
  return static_cast<size_t>(
      std::lower_bound(v.begin() + static_cast<ptrdiff_t>(lo),
                       v.begin() + static_cast<ptrdiff_t>(hi), x) -
      v.begin());
}

/// Appends a ∩ b to `out` (all three ascending). Galloping when the lengths
/// are skewed — the candidate-seeding shape, where an already-narrowed
/// running intersection meets a frequent entity's long posting list — and
/// the linear std::set_intersection otherwise.
void IntersectSortedInto(std::span<const SetId> a, std::span<const SetId> b,
                         std::vector<SetId>* out) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() >= kGallopSkew * a.size()) {
    size_t pos = 0;
    for (SetId x : a) {
      pos = GallopLowerBound(b, pos, x);
      if (pos == b.size()) break;
      if (b[pos] == x) {
        out->push_back(x);
        ++pos;
      }
    }
    return;
  }
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

}  // namespace

InvertedIndex::InvertedIndex(const SetCollection& collection) {
  num_entities_ = collection.universe_size();
  num_sets_ = collection.num_sets();

  // Counting pass.
  std::vector<size_t> freq(num_entities_ + 1, 0);
  for (SetId s = 0; s < num_sets_; ++s) {
    for (EntityId e : collection.set(s)) ++freq[e];
  }
  offsets_.assign(num_entities_ + 1, 0);
  for (EntityId e = 0; e < num_entities_; ++e) {
    offsets_[e + 1] = offsets_[e] + freq[e];
  }
  sets_.resize(offsets_[num_entities_]);

  // Fill pass; iterating sets in increasing id order keeps postings sorted.
  std::vector<size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (SetId s = 0; s < num_sets_; ++s) {
    for (EntityId e : collection.set(s)) sets_[cursor[e]++] = s;
  }
}

std::vector<SetId> InvertedIndex::SetsContainingAll(
    std::span<const EntityId> entities) const {
  if (entities.empty()) {
    std::vector<SetId> all(num_sets_);
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  // Start from the rarest entity to keep intermediate results small.
  EntityId rarest = entities[0];
  for (EntityId e : entities) {
    if (Frequency(e) < Frequency(rarest)) rarest = e;
  }
  auto base = Postings(rarest);
  std::vector<SetId> result(base.begin(), base.end());
  for (EntityId e : entities) {
    if (e == rarest || result.empty()) continue;
    auto post = Postings(e);
    std::vector<SetId> next;
    next.reserve(std::min(result.size(), post.size()));
    IntersectSortedInto(result, post, &next);
    result.swap(next);
  }
  return result;
}

}  // namespace setdisc
