#pragma once

/// \file sub_collection.h
/// A view over a subset of a SetCollection's sets.
///
/// Every step of the search (tree construction, lookahead recursion,
/// interactive narrowing) operates on sub-collections; they are cheap
/// sorted-id vectors sharing the parent collection's storage.

#include <span>
#include <utility>
#include <vector>

#include "collection/set_collection.h"
#include "collection/types.h"
#include "util/status.h"

namespace setdisc {

/// A sorted list of set ids viewed against a parent SetCollection.
class SubCollection {
 public:
  SubCollection() = default;

  /// Takes ownership of `ids`; they must be sorted and unique.
  SubCollection(const SetCollection* collection, std::vector<SetId> ids)
      : collection_(collection), ids_(std::move(ids)) {
#ifndef NDEBUG
    for (size_t i = 1; i < ids_.size(); ++i) SETDISC_CHECK(ids_[i - 1] < ids_[i]);
#endif
  }

  /// The full collection as a sub-collection view.
  static SubCollection Full(const SetCollection* collection);

  const SetCollection& collection() const { return *collection_; }
  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  std::span<const SetId> ids() const { return ids_; }
  SetId front() const { return ids_.front(); }

  /// Splits into (sets containing e, sets not containing e). An informative
  /// entity yields two non-empty halves.
  ///
  /// With `derive_fingerprints` set and this view's fingerprint already
  /// computed, both children's fingerprints are derived during the partition
  /// pass (see Fingerprint()). Callers that never read fingerprints — e.g.
  /// lookahead recursion internals — leave it off and pay nothing.
  std::pair<SubCollection, SubCollection> Partition(
      EntityId e, bool derive_fingerprints = false) const;

  /// Number of member sets containing entity `e`.
  size_t CountContaining(EntityId e) const;

  /// Total (set, entity) incidences across members — the counting-pass cost.
  size_t TotalElements() const;

  /// 64-bit fingerprint of the member-id sequence, the candidate-set half of
  /// a cross-session cache key (service/selection_cache.h). Computed lazily
  /// on first call and memoized; Partition(e, /*derive_fingerprints=*/true)
  /// extends an existing fingerprint to both children during the partition
  /// pass (incrementally — no rescan), so a narrowing chain pays O(|C|)
  /// once and O(1) per step after that.
  ///
  /// The memoization is unsynchronized, like every other selector-facing
  /// structure: confine a SubCollection to one thread.
  uint64_t Fingerprint() const;

 private:
  const SetCollection* collection_ = nullptr;
  std::vector<SetId> ids_;
  mutable uint64_t fingerprint_ = 0;
  mutable bool fingerprint_valid_ = false;
};

}  // namespace setdisc
