#pragma once

/// \file sharded_collection.h
/// Partitioned collection layer: one SetCollection split into K independent
/// CSR shards, each with its own InvertedIndex and content fingerprint.
///
/// The paper's cost model makes the per-step counting pass over the
/// candidate sub-collection the dominant cost of a question, and that pass
/// is embarrassingly parallel across disjoint set-id ranges: count each
/// shard's candidates separately, then merge the per-entity sums. Sharding
/// therefore decomposes three per-step passes —
///
///   * candidate seeding (posting-list intersection) per shard,
///   * entity counting (ShardedCounter: per-shard map + merge),
///   * partition-on-answer (per-shard Partition),
///
/// — while every *decision* (which entity to ask) is taken on the merged
/// counts, so sharded sessions produce transcripts byte-identical to the
/// unsharded engine (tests/sharded_parity_test.cc). It is also the on-ramp
/// to multi-node serving: a shard is a self-contained (collection, index)
/// pair that could live in another process.
///
/// Id spaces: entity ids are global (shards share the universe). Set ids
/// exist twice — the base collection's *global* ids, which appear in every
/// transcript, result, and wire message, and per-shard *local* dense ids,
/// which keep each shard's CSR and scratch arrays compact. The
/// ShardedCollection owns both mappings; within a shard, ascending local id
/// order IS ascending global id order, so per-shard candidate lists merge
/// into the globally sorted candidate list without re-sorting.

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "collection/count_chain.h"
#include "collection/delta_counter.h"
#include "collection/entity_counter.h"
#include "collection/inverted_index.h"
#include "collection/set_collection.h"
#include "collection/sub_collection.h"
#include "collection/types.h"
#include "util/thread_pool.h"

namespace setdisc {

class ShardedSubCollection;

/// How set ids map to shards.
enum class ShardScheme : uint8_t {
  /// Contiguous global-id ranges: shard k holds ids [k*n/K, (k+1)*n/K).
  /// Preserves locality of id-adjacent sets; per-shard candidate lists
  /// concatenate into the global order.
  kRange = 0,
  /// Mixed assignment by hashed id: shard = FingerprintMix(id) % K. Balances
  /// shard load when id ranges correlate with set size or popularity.
  kHash = 1,
};

struct ShardingOptions {
  /// Clamped to [1, kMaxShards]; shards may be empty (K > num sets is fine).
  size_t num_shards = 1;
  ShardScheme scheme = ShardScheme::kRange;
};

/// Upper bound on shards per process: the merge keeps one cursor per shard
/// in a fixed array, and a per-process shard is only useful up to roughly
/// the core count anyway (cross-node sharding is the ROADMAP follow-on).
inline constexpr size_t kMaxShards = 64;

/// Below this many candidate sets the per-shard fan-out runs serially even
/// when a pool is available: the merge/wakeup overhead outweighs the scan.
inline constexpr size_t kShardParallelMinSets = 64;

/// An immutable K-way partition of a SetCollection. The base collection must
/// outlive the sharded view (labels, entity names, and transcripts keep
/// referring to it).
class ShardedCollection {
 public:
  ShardedCollection(const SetCollection& base, ShardingOptions options);

  const SetCollection& base() const { return *base_; }
  size_t num_shards() const { return shards_.size(); }
  ShardScheme scheme() const { return options_.scheme; }

  /// Shard k's sets as a compact collection over local dense ids.
  const SetCollection& shard(size_t k) const { return shards_[k].collection; }

  /// Shard k's entity -> local-set-id posting lists.
  const InvertedIndex& index(size_t k) const { return *shards_[k].index; }

  /// Global id of shard k's local set id.
  SetId GlobalId(size_t k, SetId local) const {
    return shards_[k].to_global[local];
  }

  size_t ShardOf(SetId global) const { return shard_of_[global]; }
  SetId LocalOf(SetId global) const { return local_of_[global]; }

  /// Identity of this sharded view for cross-session cache keys: the K
  /// per-shard content fingerprints folded together with K and the scheme,
  /// so the same base collection sharded two different ways never shares
  /// cache entries. Exception by construction: K == 1 fingerprints exactly
  /// like the unsharded base (one shard is the base collection), so a
  /// degenerate sharded manager and an unsharded manager given the same
  /// SelectionCache share their memo.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// The whole collection as a sharded candidate view.
  ShardedSubCollection Full() const;

  /// Algorithm 2 lines 1-4, per shard: local posting-list intersections of
  /// `entities`, one SubCollection per shard. An empty query matches all.
  ShardedSubCollection SetsContainingAll(
      std::span<const EntityId> entities) const;

 private:
  struct Shard {
    SetCollection collection;               // local dense ids
    std::unique_ptr<InvertedIndex> index;   // entity -> local ids
    std::vector<SetId> to_global;           // local id -> global id
  };

  const SetCollection* base_;
  ShardingOptions options_;
  std::vector<Shard> shards_;
  std::vector<uint32_t> shard_of_;  // global id -> shard
  std::vector<SetId> local_of_;     // global id -> local id
  uint64_t fingerprint_ = 0;
};

/// A candidate set viewed per shard: one SubCollection of local ids per
/// shard of the parent ShardedCollection. The sharded analogue of
/// SubCollection — same lifecycle (narrowed by Partition on every answer),
/// same lazy fingerprint contract, same single-thread confinement.
class ShardedSubCollection {
 public:
  ShardedSubCollection() = default;

  /// Takes one per-shard view per shard of `collection` (sizes must match).
  ShardedSubCollection(const ShardedCollection* collection,
                       std::vector<SubCollection> shards);

  const ShardedCollection& collection() const { return *collection_; }
  size_t num_shards() const { return shards_.size(); }
  const SubCollection& shard(size_t k) const { return shards_[k]; }

  /// Total candidate sets across shards (cached; O(1)).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Splits every shard into (sets containing e, sets not containing e);
  /// the paper's partition-on-answer, run per shard. With `pool` set and the
  /// view large enough (kShardParallelMinSets) the shards partition in
  /// parallel via ThreadPool::ParallelFor. `derive_fingerprints` has
  /// SubCollection::Partition semantics, per shard.
  std::pair<ShardedSubCollection, ShardedSubCollection> Partition(
      EntityId e, bool derive_fingerprints = false,
      ThreadPool* pool = nullptr) const;

  /// Combined fingerprint: the per-shard SubCollection fingerprints folded
  /// in shard order — O(K) given the per-shard values, which Partition
  /// derives incrementally, so a narrowing chain pays O(|C|) once like the
  /// unsharded view. K == 1 returns shard 0's fingerprint unchanged (local
  /// ids == global ids there), matching the unsharded construction so
  /// degenerate sharding shares cache entries with unsharded sessions.
  ///
  /// Memoized and unsynchronized like SubCollection::Fingerprint(): confine
  /// a view to one stepping thread.
  uint64_t Fingerprint() const;

  /// Appends the member sets' *global* ids in ascending order (k-way merge
  /// of the per-shard lists; a concatenation for range sharding).
  void AppendGlobalIds(std::vector<SetId>* out) const;

  /// Ascending global ids as a fresh vector.
  std::vector<SetId> GlobalIds() const;

  /// Smallest global member id — the single remaining candidate when
  /// size() == 1 (the sharded front()). Requires a non-empty view.
  SetId FrontGlobal() const;

  /// Total (set, entity) incidences across all shards' members.
  size_t TotalElements() const;

 private:
  const ShardedCollection* collection_ = nullptr;
  std::vector<SubCollection> shards_;
  size_t size_ = 0;
  mutable uint64_t fingerprint_ = 0;
  mutable bool fingerprint_valid_ = false;
};

/// The sharded counting pass: per-shard entity counts mapped in parallel,
/// merged into one ascending-entity-id list of *globally* informative
/// entities — byte-identical to EntityCounter::CountInformative over the
/// merged candidate set, which is what keeps sharded selection decisions
/// equal to unsharded ones.
///
/// Differential counting (collection/delta_counter.h), per shard: the
/// counter retains each shard's full counts of the last view it counted,
/// and when NotePartition() reports that the next view is one half of a
/// partition of that view, each shard derives its child counts by
/// dense-scanning only the smaller LOCAL half — the kept shard view
/// (GatherChild) or the dropped local sibling (SubtractChild), decided per
/// shard, since answers can skew differently per shard under hash
/// partitioning — before the sorted merge. Each shard's own cost check
/// compares the derivation against that shard's recount including its emit
/// volume, so a sharded delta pass is never slower than recounting the
/// shard. The per-shard passes are unfiltered (CountAll without the mask);
/// the informative test and the exclusion mask are applied at merge time,
/// which both keeps the retained state valid across §6 mask growth and
/// lets a same-view re-emit (the don't-know loop) skip counting entirely.
///
/// Owns one EntityCounter and two count buffers per shard, reused across
/// every step of a session (clear-by-touched-list inside EntityCounter, no
/// per-step allocation or memset). Not thread-safe across concurrent
/// CountInformative calls; one instance per session, like any selector
/// scratch. A single call may *internally* fan its per-shard passes across
/// `pool`.
class ShardedCounter {
 public:
  ShardedCounter() = default;

  /// When disabled, every call recounts every shard from scratch with no
  /// retention — the full-recount baseline for bench_counting.
  void set_delta_enabled(bool enabled) {
    delta_enabled_ = enabled;
    if (!enabled) Release();
  }
  bool delta_enabled() const { return delta_enabled_; }

  /// Appends every informative entity of the combined candidate set with its
  /// total count, ascending by entity id. `out` is cleared first. Entities
  /// marked in `excluded` are skipped (at merge time).
  void CountInformative(const ShardedSubCollection& sub,
                        std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr,
                        ThreadPool* pool = nullptr);

  /// Declares that `kept` and `dropped` are the halves of a partition of
  /// `parent`; arms per-shard derivation for the next CountInformative(kept)
  /// if the retained counts describe `parent`, else invalidates. Takes
  /// ownership of `dropped`.
  void NotePartition(const ShardedSubCollection& parent,
                     const ShardedSubCollection& kept,
                     ShardedSubCollection dropped);

  /// Forgets retained counts and any armed partition (backtracks).
  void Invalidate();

  /// Invalidate() plus freeing all per-shard scratch and retained state.
  void Release();

  const DeltaCounterStats& delta_stats() const { return chain_.stats(); }

 private:
  /// Merges `num_shards` per-shard partial lists restricted to entity ids in
  /// [lo, hi) into `out` (ascending; informative for combined size n and not
  /// excluded only).
  void MergeRange(size_t num_shards, uint32_t n, EntityId lo, EntityId hi,
                  const EntityExclusion* excluded,
                  std::vector<EntityCount>* out) const;

  std::vector<EntityCounter> counters_;            // one per shard
  std::vector<std::vector<EntityCount>> partial_;  // per-shard full counts
  std::vector<std::vector<EntityCount>> ranges_;   // per-range merge outputs

  /// Retained per-shard full counts of the view the chain describes
  /// (swapped with partial_ after every pass) and the armed sibling view.
  /// The chain's mask snapshot stays empty on purpose: per-shard counts are
  /// unfiltered, so retention is mask-independent and the serve gate always
  /// passes.
  std::vector<std::vector<EntityCount>> prev_;
  ShardedSubCollection sibling_;
  CountChain chain_;
  bool delta_enabled_ = true;
};

}  // namespace setdisc
