#pragma once

/// \file count_chain.h
/// The fingerprint-chain state machine shared by every retained-counting
/// layer: DeltaCounter (unsharded), ShardedCounter (per-shard), and the
/// weighted selectors' retained top-level state (core/weighted_klp.h).
///
/// All three keep "the counts of the last view I computed" and decide, per
/// call, whether the incoming view can be served from that state:
///
///   * re-emit — the view IS the retained view (same fingerprint, no armed
///               derivation): serve without counting;
///   * delta   — an armed partition's kept half arrived (expected
///               fingerprint): derive the child from the parent state;
///   * full    — anything else: recount and re-seed.
///
/// The chain also owns the retention-time exclusion-mask snapshot and its
/// serve gate: retained state is only served while every entity the mask
/// excluded at retention time is still excluded (masks only grow within a
/// session, so the gate normally passes; arbitrary callers fall back to a
/// full count). What the retained payload IS — an informative list, per-
/// shard full counts, (count, weight) pairs — stays with the owner; this
/// class only answers "which path serves" and keeps the stats straight.

#include <cstdint>
#include <span>
#include <vector>

#include "collection/entity_exclusion.h"
#include "collection/types.h"

namespace setdisc {

/// Where each retained-counting call was served. `full` seeds the state,
/// `delta` covers the sibling-count derivations (including SeedChild
/// handoffs), `reemits` are the count-free paths; invalidations count
/// explicit resets (backtracks) plus chain breaks detected by the
/// fingerprint check.
struct DeltaCounterStats {
  uint64_t full = 0;
  uint64_t delta = 0;
  uint64_t reemits = 0;
  uint64_t invalidations = 0;

  uint64_t total() const { return full + delta + reemits; }
};

/// The serve path Classify() picks for one counting call.
enum class CountServe : uint8_t { kFull, kDelta, kReemit };

/// Fingerprint-chain + mask-snapshot state machine. Owners drive it in
/// lock-step with their retained payload: Classify, then serve the payload
/// accordingly, then Commit the path taken. Not thread-safe (confined with
/// the counting scratch it guards).
class CountChain {
 public:
  /// Which path would serve a view with fingerprint `fp` under `excluded`.
  CountServe Classify(uint64_t fp, const EntityExclusion* excluded) const {
    if (valid_ && MaskStillCovers(excluded)) {
      if (!pending_ && fp == counted_fp_) return CountServe::kReemit;
      if (pending_ && fp == expected_fp_) return CountServe::kDelta;
    }
    return CountServe::kFull;
  }

  /// Arms a derivation: the view with fingerprint `kept_fp` is one half of a
  /// partition of the retained view `parent_fp`. Returns false — after
  /// invalidating — when the retained state does not describe the parent
  /// (cache hit answered the last step, fresh session, backtrack).
  bool Arm(uint64_t parent_fp, uint64_t kept_fp) {
    if (!valid_ || parent_fp != counted_fp_) {
      Invalidate();
      return false;
    }
    expected_fp_ = kept_fp;
    pending_ = true;
    return true;
  }

  /// Consumes an armed derivation without serving it (the owner decided to
  /// recount, or classified the view as neither child nor re-emit). Chain
  /// breaks with a derivation armed count as invalidations.
  void ConsumePending(bool broken) {
    if (pending_ && broken) ++stats_.invalidations;
    pending_ = false;
  }

  /// Retained payload re-seeded by a full count of `fp` under `excluded`.
  void CommitFull(uint64_t fp, const EntityExclusion* excluded) {
    SnapshotMask(excluded);
    counted_fp_ = fp;
    valid_ = true;
    pending_ = false;
    ++stats_.full;
  }

  /// Retained payload derived from the parent's; the parent's mask snapshot
  /// stays in force (the derivation inherited its filtering).
  void CommitDelta(uint64_t fp) {
    counted_fp_ = fp;
    valid_ = true;
    pending_ = false;
    ++stats_.delta;
  }

  void CommitReemit() { ++stats_.reemits; }

  /// Installs externally produced retained state (the Adopt paths — e.g.
  /// merged sharded counts handed to an inner counter). Like CommitFull but
  /// the counting work happened in the caller's accounting, so no stats
  /// bump here.
  void Adopt(uint64_t fp, const EntityExclusion* excluded) {
    SnapshotMask(excluded);
    counted_fp_ = fp;
    valid_ = true;
    pending_ = false;
  }

  /// Forgets the chain (not the owner's payload buffers). Counted as an
  /// invalidation when there was state to lose.
  void Invalidate() {
    if (valid_ || pending_) ++stats_.invalidations;
    valid_ = false;
    pending_ = false;
  }

  /// Invalidate() plus freeing the mask snapshot storage.
  void Release() {
    Invalidate();
    retained_mask_ = {};
  }

  bool valid() const { return valid_; }
  bool pending() const { return pending_; }
  uint64_t counted_fp() const { return counted_fp_; }
  uint64_t expected_fp() const { return expected_fp_; }

  /// Serve gate: every entity the retention-time mask excluded must still be
  /// excluded, or the retained payload may be missing candidates the current
  /// mask would admit. (Entities the current mask excludes *beyond* the
  /// snapshot are the owner's emit filter's job.)
  bool MaskStillCovers(const EntityExclusion* excluded) const {
    for (EntityId e : retained_mask_) {
      if (excluded == nullptr || e >= excluded->size() || !(*excluded)[e]) {
        return false;
      }
    }
    return true;
  }

  /// Snapshots the current mask's excluded ids alongside a fresh retention.
  void SnapshotMask(const EntityExclusion* excluded) {
    CopyMaskIds(excluded, &retained_mask_);
  }

  /// Installs an explicit snapshot (SeedChild adopts the last emit's mask).
  void SetMaskSnapshot(const std::vector<EntityId>& ids) {
    retained_mask_ = ids;
  }

  static void CopyMaskIds(const EntityExclusion* excluded,
                          std::vector<EntityId>* out) {
    if (excluded == nullptr) {
      out->clear();
    } else {
      std::span<const EntityId> ids = excluded->excluded_ids();
      out->assign(ids.begin(), ids.end());
    }
  }

  const DeltaCounterStats& stats() const { return stats_; }
  DeltaCounterStats& stats() { return stats_; }

 private:
  std::vector<EntityId> retained_mask_;
  uint64_t counted_fp_ = 0;
  uint64_t expected_fp_ = 0;
  bool valid_ = false;
  bool pending_ = false;
  DeltaCounterStats stats_;
};

}  // namespace setdisc
