#pragma once

/// \file entity_counter.h
/// Hot path: counting, for a sub-collection C, how many member sets contain
/// each entity — the |C1| of every candidate partition.
///
/// §3 of the paper divides entities into informative (0 < count < |C|) and
/// uninformative; only informative entities are eligible for decision-tree
/// nodes. The counter emits informative entities only.
///
/// Implementation: a scratch array of counts indexed by EntityId plus a
/// touched list, reused across calls, giving O(total elements of C) per pass
/// with no hashing.

#include <vector>

#include "collection/entity_exclusion.h"
#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

/// One candidate entity with its partition size within a sub-collection.
struct EntityCount {
  EntityId entity = kNoEntity;
  uint32_t count = 0;  ///< number of sets in the sub-collection containing it

  bool operator==(const EntityCount&) const = default;
};

// EntityExclusion — the optional predicate for excluding entities (e.g.
// "don't know" answers, §6 of the paper) — lives in entity_exclusion.h; it
// is re-exported here because every selector includes this header.

/// Reusable counting workspace. Not thread-safe; use one per thread.
class EntityCounter {
 public:
  EntityCounter() = default;

  /// Appends to `out` every informative entity of `sub` with its count,
  /// in ascending entity-id order (deterministic). `out` is cleared first.
  ///
  /// \param excluded  if non-null, entities marked true are skipped.
  void CountInformative(const SubCollection& sub, std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr);

  /// Like CountInformative but returns *all* entities with non-zero count,
  /// including uninformative ones (used by generators and diagnostics).
  void CountAll(const SubCollection& sub, std::vector<EntityCount>* out);

 private:
  void EnsureCapacity(EntityId universe);

  std::vector<uint32_t> counts_;
  std::vector<EntityId> touched_;
};

}  // namespace setdisc
