#pragma once

/// \file entity_counter.h
/// Hot path: counting, for a sub-collection C, how many member sets contain
/// each entity — the |C1| of every candidate partition.
///
/// §3 of the paper divides entities into informative (0 < count < |C|) and
/// uninformative; only informative entities are eligible for decision-tree
/// nodes. The counter emits informative entities only.
///
/// Implementation: a scratch array of counts indexed by EntityId plus a
/// touched list, reused across calls, giving O(total elements of C) per pass
/// with no hashing. The gather-increment itself is a flat, branchless kernel
/// (collection/count_kernels.h): first-touch tracking is a conditional
/// post-increment of the touched write index, not an if-push_back, so the
/// hot loop carries only the counts[e]++ data dependence.

#include <span>
#include <vector>

#include "collection/entity_exclusion.h"
#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

/// One candidate entity with its partition size within a sub-collection.
struct EntityCount {
  EntityId entity = kNoEntity;
  uint32_t count = 0;  ///< number of sets in the sub-collection containing it

  bool operator==(const EntityCount&) const = default;
};

// EntityExclusion — the optional predicate for excluding entities (e.g.
// "don't know" answers, §6 of the paper) — lives in entity_exclusion.h; it
// is re-exported here because every selector includes this header.

/// Reusable counting workspace. Not thread-safe; use one per thread.
class EntityCounter {
 public:
  EntityCounter() = default;

  /// Appends to `out` every informative entity of `sub` with its count,
  /// in ascending entity-id order (deterministic). `out` is cleared first.
  ///
  /// \param excluded  if non-null, entities marked true are skipped.
  void CountInformative(const SubCollection& sub, std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr);

  /// Like CountInformative but returns *all* entities with non-zero count,
  /// including uninformative ones (used by generators, diagnostics, and as
  /// the per-shard pass of ShardedCounter — a shard cannot decide
  /// informativeness, only the merged counts can).
  ///
  /// \param excluded  if non-null, entities marked true are skipped.
  void CountAll(const SubCollection& sub, std::vector<EntityCount>* out,
                const EntityExclusion* excluded = nullptr);

  /// Counts `sub` into the dense scratch and leaves it there: dense()[e] is
  /// the count of e until the next Count* call on this counter. No touched
  /// sort, no list emission — the shape differential derivations want,
  /// since they walk an already-sorted parent list and only need random
  /// access to this half's counts (delta_counter.h, klp.cc). The next
  /// Count* call clears the residue by touched list as usual.
  void CountDense(const SubCollection& sub);

  /// The dense count array after CountDense (indexed by EntityId; valid up
  /// to the counted sub-collection's universe).
  std::span<const uint32_t> dense() const { return counts_; }

  /// Sweep-vs-sort crossover: the dense sweep wins once at least
  /// universe / kDenseSweepDivisor entities were touched. Calibrated by
  /// bench_micro's BM_EmitCrossover sweep (RelWithDebInfo, x86-64: the sort
  /// overtakes the sweep between universe/8 and universe/32 touched; 16 sits
  /// mid-band and is within a few percent of either extreme's best case).
  /// Retune there before changing it here; delta_counter_test pins output
  /// parity on both sides of the boundary.
  static constexpr size_t kDenseSweepDivisor = 16;

  /// Emitting in ascending entity order costs either a sort of the touched
  /// list (O(t log t)) or an in-order sweep of the dense count array
  /// (O(m') sequential reads). The sweep wins once a meaningful fraction of
  /// the universe was touched — which is the normal shape for root-level
  /// counting over a large collection, and the case the sharded per-shard
  /// passes multiply. Public so the boundary test can place its inputs
  /// exactly at the crossover.
  static bool DenseSweepIsCheaper(size_t touched, EntityId universe) {
    return touched >= universe / kDenseSweepDivisor;
  }

  /// Drops the dense scratch (O(universe) ints) and the touched list. The
  /// next count re-grows them; results are unaffected. Called by
  /// ReleaseMemory() chains when a session goes idle so parked sessions do
  /// not pin per-universe scratch each.
  void Release() {
    counts_ = {};
    touched_ = {};
    num_touched_ = 0;
    dense_live_ = false;
  }

 private:
  void EnsureCapacity(EntityId universe);

  /// Zeroes a live CountDense residue (by touched list) so the scratch is
  /// all-zero again — the invariant every counting pass starts from.
  void ClearDense() {
    for (size_t i = 0; i < num_touched_; ++i) counts_[touched_[i]] = 0;
    num_touched_ = 0;
    dense_live_ = false;
  }

  std::vector<uint32_t> counts_;
  /// Kept at universe capacity so the branchless kernel can store
  /// unconditionally; num_touched_ is the live prefix.
  std::vector<EntityId> touched_;
  size_t num_touched_ = 0;
  bool dense_live_ = false;
};

}  // namespace setdisc
