#pragma once

/// \file entity_counter.h
/// Hot path: counting, for a sub-collection C, how many member sets contain
/// each entity — the |C1| of every candidate partition.
///
/// §3 of the paper divides entities into informative (0 < count < |C|) and
/// uninformative; only informative entities are eligible for decision-tree
/// nodes. The counter emits informative entities only.
///
/// Implementation: a scratch array of counts indexed by EntityId plus a
/// touched list, reused across calls, giving O(total elements of C) per pass
/// with no hashing.

#include <vector>

#include "collection/entity_exclusion.h"
#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

/// One candidate entity with its partition size within a sub-collection.
struct EntityCount {
  EntityId entity = kNoEntity;
  uint32_t count = 0;  ///< number of sets in the sub-collection containing it

  bool operator==(const EntityCount&) const = default;
};

// EntityExclusion — the optional predicate for excluding entities (e.g.
// "don't know" answers, §6 of the paper) — lives in entity_exclusion.h; it
// is re-exported here because every selector includes this header.

/// Reusable counting workspace. Not thread-safe; use one per thread.
class EntityCounter {
 public:
  EntityCounter() = default;

  /// Appends to `out` every informative entity of `sub` with its count,
  /// in ascending entity-id order (deterministic). `out` is cleared first.
  ///
  /// \param excluded  if non-null, entities marked true are skipped.
  void CountInformative(const SubCollection& sub, std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr);

  /// Like CountInformative but returns *all* entities with non-zero count,
  /// including uninformative ones (used by generators, diagnostics, and as
  /// the per-shard pass of ShardedCounter — a shard cannot decide
  /// informativeness, only the merged counts can).
  ///
  /// \param excluded  if non-null, entities marked true are skipped.
  void CountAll(const SubCollection& sub, std::vector<EntityCount>* out,
                const EntityExclusion* excluded = nullptr);

 private:
  void EnsureCapacity(EntityId universe);

  /// Emitting in ascending entity order costs either a sort of the touched
  /// list (O(t log t)) or an in-order sweep of the dense count array
  /// (O(m') sequential reads). The sweep wins once a meaningful fraction of
  /// the universe was touched — which is the normal shape for root-level
  /// counting over a large collection, and the case the sharded per-shard
  /// passes multiply.
  static bool DenseSweepIsCheaper(size_t touched, EntityId universe) {
    return touched >= universe / 16;
  }

  std::vector<uint32_t> counts_;
  std::vector<EntityId> touched_;
};

}  // namespace setdisc
