#pragma once

/// \file inverted_index.h
/// Entity -> posting-list index over a SetCollection.
///
/// Used by Algorithm 2 (set discovery) to find the candidate sets that
/// contain every entity of the user's initial example set I, and by the
/// web-tables pipeline to build sub-collections from 2-entity seed pairs.

#include <span>
#include <vector>

#include "collection/set_collection.h"
#include "collection/types.h"

namespace setdisc {

/// CSR posting lists: for each entity, the sorted ids of sets containing it.
class InvertedIndex {
 public:
  /// Builds the index in O(total_elements).
  explicit InvertedIndex(const SetCollection& collection);

  /// Sorted ids of the sets containing entity `e` (empty for unseen ids).
  std::span<const SetId> Postings(EntityId e) const {
    if (e >= num_entities_) return {};
    return {sets_.data() + offsets_[e], sets_.data() + offsets_[e + 1]};
  }

  /// Number of sets containing entity `e` (its document frequency).
  size_t Frequency(EntityId e) const { return Postings(e).size(); }

  /// Sorted ids of sets containing *all* of `entities` (posting-list
  /// intersection, smallest list first). An empty query matches every set.
  std::vector<SetId> SetsContainingAll(std::span<const EntityId> entities) const;

  EntityId num_entities() const { return num_entities_; }

 private:
  EntityId num_entities_ = 0;
  SetId num_sets_ = 0;
  std::vector<size_t> offsets_;
  std::vector<SetId> sets_;
};

}  // namespace setdisc
