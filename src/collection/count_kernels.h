#pragma once

/// \file count_kernels.h
/// The three flat inner loops of the counting stack, isolated in their own
/// translation unit so they stay branch-light for the auto-vectorizer and so
/// a build can compile just them for wider ISAs (SETDISC_KERNEL_MULTIARCH;
/// see CMakeLists.txt). Every caller-visible effect is a plain array write —
/// no allocation, no virtual dispatch, no clearing protocol — which is what
/// lets delta_counter.cc, sharded_collection.cc, and klp.cc share them.
///
///   * AccumulateCounts — the dense gather-increment pass (one add per
///     (set, entity) incidence) with branchless first-touch tracking;
///   * GatherChild      — child counts read straight off a dense array while
///     walking the parent's sorted list ("kept is the smaller half");
///   * SubtractChild    — child counts = parent - dense sibling counts
///     ("dropped sibling is the smaller half").
///
/// The derive kernels preserve the parent list's ascending-entity order (a
/// filtered copy), may write in place (out == parent; the write index never
/// passes the read index), and compact with a branchless conditional
/// post-increment instead of an if-push_back. tests/count_kernels_test.cc
/// pins each against a naive reference — including the multi-arch build,
/// where the same test doubles as the ISA-dispatch parity check.

#include <cstddef>
#include <cstdint>

#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

struct EntityCount;

namespace kernels {

/// counts[e] += 1 for every (set, entity) incidence of `sub`, appending each
/// entity to `touched` on its first increment (first-occurrence order, same
/// as the branchy loop it replaces). Returns the number of touched entries
/// written. `counts` must be zero-initialized over the collection's universe
/// and `touched` must have room for universe + 1 entries: the store is
/// unconditional, so the slot past the last first-touch keeps being used as
/// a write sink after every entity has been seen.
size_t AccumulateCounts(const SubCollection& sub, uint32_t* counts,
                        EntityId* touched);

/// Derives a child list by reading the child's own dense counts while
/// walking the parent's ascending list: out gets {e, dense[e]} for every
/// parent entry with dense[e] != 0 (and != n when drop_full — the child's
/// informative filter). Returns entries written; out may alias parent.
size_t GatherChild(const EntityCount* parent, size_t m, const uint32_t* dense,
                   size_t dense_size, uint32_t n, bool drop_full,
                   EntityCount* out);

/// Derives a child list by subtraction: out gets {e, parent count - dense[e]}
/// for every parent entry whose difference stays != 0 (and != n when
/// drop_full). Returns entries written; out may alias parent.
size_t SubtractChild(const EntityCount* parent, size_t m, const uint32_t* dense,
                     size_t dense_size, uint32_t n, bool drop_full,
                     EntityCount* out);

}  // namespace kernels
}  // namespace setdisc
