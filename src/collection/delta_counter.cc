#include "collection/delta_counter.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "collection/count_kernels.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace setdisc {

namespace {

/// Process-wide serve-path mix {full, delta, reemit}: the per-instance
/// DeltaCounterStats die with their selector, the registry counters are
/// what live monitoring reads.
obs::Counter* ServeCounter(obs::ServePath path) {
  static obs::Counter* const full = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "full"}});
  static obs::Counter* const delta = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "delta"}});
  static obs::Counter* const reemit =
      obs::MetricsRegistry::Default().GetCounter("setdisc_delta_serves_total",
                                                 {{"path", "reemit"}});
  switch (path) {
    case obs::ServePath::kDelta: return delta;
    case obs::ServePath::kReemit: return reemit;
    default: return full;
  }
}

void NoteServe(obs::ServePath path) {
  obs::NoteServePath(path);
  if (obs::Enabled()) ServeCounter(path)->Add(1);
}

bool ByCountEntity(const EntityCount& a, const EntityCount& b) {
  return a.count != b.count ? a.count < b.count : a.entity < b.entity;
}

}  // namespace

void DeltaCounter::EmitFiltered(const std::vector<EntityCount>& retained,
                                const EntityExclusion* excluded,
                                std::vector<EntityCount>* out) {
  out->clear();
  out->reserve(retained.size());
  for (const EntityCount& ec : retained) {
    if (excluded != nullptr && ec.entity < excluded->size() &&
        (*excluded)[ec.entity]) {
      continue;
    }
    out->push_back(ec);
  }
}

void DeltaCounter::CountInformative(const SubCollection& sub,
                                    std::vector<EntityCount>* out,
                                    const EntityExclusion* excluded) {
  obs::PhaseTimer timer(obs::Phase::kCount);
  if (!enabled_) {
    NoteServe(obs::ServePath::kFull);
    counter_.CountInformative(sub, out, excluded);
    return;
  }
  const uint32_t n = static_cast<uint32_t>(sub.size());
  const uint64_t fp = sub.Fingerprint();
  const CountServe serve = chain_.Classify(fp, excluded);

  if (serve == CountServe::kDelta) {
    // Derivation armed and the view is the expected child. Deriving scans
    // the SMALLER half of the partition dense (its elements) plus one pass
    // over the parent list; recounting scans the kept view's own elements
    // and then pays roughly twice the touched set again for the
    // sort-or-sweep emission and the scratch clear — min(kept, m) is the
    // stand-in for that touched volume. The margin this widens over the
    // old "sibling + m < kept" check is exactly what lets ~even splits
    // (every 1-step selector's steady state) serve differentially.
    const size_t m = retained_.size();
    const size_t kept_cost = sub.TotalElements();
    const size_t sib_cost = sibling_.TotalElements();
    const size_t derive_cost = std::min(kept_cost, sib_cost) + m;
    const size_t full_cost = kept_cost + 2 * std::min(kept_cost, m);
    if (derive_cost < full_cost) {
      if (sib_cost < kept_cost) {
        // Dropped sibling is the smaller half: subtract it out of the
        // parent list. Every child entity appears in the parent list
        // (closure; see header), so nothing is missed. The dense scratch
        // is still live for the order repair.
        counter_.CountDense(sibling_);
        const std::span<const uint32_t> dense = counter_.dense();
        const size_t w =
            kernels::SubtractChild(retained_.data(), m, dense.data(),
                                   dense.size(), n,
                                   /*drop_full=*/true, retained_.data());
        if (retain_order_) RepairOrderAfterSubtract(dense, n);
        retained_.resize(w);
      } else {
        // Kept view is the smaller half: count it dense and read the
        // child's own counts straight off while walking the parent list —
        // the emission order comes from the parent, so the recount's
        // touched-sort/sweep is skipped entirely.
        counter_.CountDense(sub);
        const std::span<const uint32_t> dense = counter_.dense();
        const size_t w = kernels::GatherChild(retained_.data(), m,
                                              dense.data(), dense.size(), n,
                                              /*drop_full=*/true,
                                              retained_.data());
        retained_.resize(w);
        order_state_ = OrderState::kStale;  // every count was rewritten
      }
      sibling_ = SubCollection();
      chain_.CommitDelta(fp);
      NoteServe(obs::ServePath::kDelta);
      EmitFiltered(retained_, excluded, out);
      CountChain::CopyMaskIds(excluded, &last_emit_mask_);
      return;
    }
    // Derivation armed but recounting is cheaper (e.g. the parent list far
    // outgrew the kept view): fall through to the full path. Not a chain
    // break — the recount re-seeds the state as usual.
    chain_.ConsumePending(/*broken=*/false);
    sibling_ = SubCollection();
  } else if (serve == CountServe::kReemit) {
    // Same view again — a SeedChild handoff, the §6 don't-know loop
    // (exclusion grew, candidates did not), or a repeated root Select. No
    // counting: re-filter under the current mask.
    chain_.CommitReemit();
    NoteServe(obs::ServePath::kReemit);
    EmitFiltered(retained_, excluded, out);
    CountChain::CopyMaskIds(excluded, &last_emit_mask_);
    return;
  } else {
    // Unknown view: the chain broke (cache hit skipped a count, backtrack,
    // different collection, first call). Full count re-seeds the state.
    chain_.ConsumePending(/*broken=*/true);
    sibling_ = SubCollection();
  }

  counter_.CountInformative(sub, &retained_, excluded);
  chain_.CommitFull(fp, excluded);
  order_state_ = OrderState::kStale;
  NoteServe(obs::ServePath::kFull);
  out->assign(retained_.begin(), retained_.end());
  CountChain::CopyMaskIds(excluded, &last_emit_mask_);
}

void DeltaCounter::RepairOrderAfterSubtract(std::span<const uint32_t> dense,
                                            uint32_t n) {
  if (order_state_ != OrderState::kValid) return;
  // One pass splits the old order: entities the sibling never touched kept
  // their count, so compacting them in place preserves their (count,
  // entity) order; touched survivors land in moved_ with their new counts.
  moved_.clear();
  size_t w = 0;
  for (const EntityCount& ec : order_) {
    const EntityId e = ec.entity;
    const uint32_t d = e < dense.size() ? dense[e] : 0;
    if (d == 0) {
      // Untouched — but a count equal to the CHILD's size is uninformative
      // now even though the count itself did not move.
      if (ec.count != n) order_[w++] = ec;
      continue;
    }
    const uint32_t c = ec.count - d;
    if (c != 0 && c != n) moved_.push_back(EntityCount{e, c});
  }
  const size_t t = moved_.size();
  // Repair must never lose to re-sorting: sorting the moved set costs about
  // t * log t, the counting-sort rebuild costs untouched + n sequential
  // steps. When the sibling touched most of the list, rebuild instead (the
  // in-place compaction above is then garbage, which is fine — the stale
  // path rebuilds from retained_).
  if (t * std::bit_width(t) > w + static_cast<size_t>(n)) {
    order_state_ = OrderState::kStale;
    return;
  }
  std::sort(moved_.begin(), moved_.end(), ByCountEntity);
  scratch_.clear();
  scratch_.reserve(w + t);
  size_t ui = 0;
  size_t mi = 0;
  while (ui < w && mi < t) {
    if (ByCountEntity(order_[ui], moved_[mi])) {
      scratch_.push_back(order_[ui++]);
    } else {
      scratch_.push_back(moved_[mi++]);
    }
  }
  scratch_.insert(scratch_.end(), order_.begin() + ui, order_.begin() + w);
  scratch_.insert(scratch_.end(), moved_.begin() + mi, moved_.end());
  order_.swap(scratch_);
}

void DeltaCounter::RebuildOrder(uint32_t n) {
  const size_t m = retained_.size();
  order_.resize(m);
  if (m == 0) {
    order_state_ = OrderState::kValid;
    return;
  }
  // Counts are informative, i.e. in [1, n - 1]: one bucket per count value.
  bucket_.assign(n, 0);
  for (const EntityCount& ec : retained_) ++bucket_[ec.count];
  uint32_t sum = 0;
  for (uint32_t c = 0; c < n; ++c) {
    const uint32_t b = bucket_[c];
    bucket_[c] = sum;
    sum += b;
  }
  // retained_ is entity-ascending and the scatter is stable, so within a
  // count group entities stay ascending — exactly std::sort by (count,
  // entity).
  for (const EntityCount& ec : retained_) order_[bucket_[ec.count]++] = ec;
  order_state_ = OrderState::kValid;
}

bool DeltaCounter::EmitMostEvenOrder(uint64_t fp, uint32_t n,
                                     const EntityExclusion* excluded,
                                     std::vector<EntityCount>* out) {
  if (!enabled_ || !retain_order_) return false;
  if (chain_.Classify(fp, excluded) != CountServe::kReemit) return false;
  if (order_state_ != OrderState::kValid) RebuildOrder(n);
  const size_t m = order_.size();
  out->clear();
  out->reserve(m);
  // order_ is (count, entity)-ascending; the target key is
  // (|2c - n|, entity). Split at the n/2 fold: in the low wing (2c <= n)
  // the imbalance FALLS as the count rises, so its equal-count runs are
  // visited back to front (each run forward, keeping entities ascending);
  // the high wing (2c > n) is already imbalance-ascending. A two-pointer
  // merge of the two streams by (imbalance, entity) — every key is unique,
  // entities are distinct — reproduces std::sort's output byte for byte in
  // O(m).
  const size_t fold =
      std::partition_point(order_.begin(), order_.end(),
                           [n](const EntityCount& ec) {
                             return 2 * static_cast<uint64_t>(ec.count) <= n;
                           }) -
      order_.begin();
  size_t run_begin = fold;  // begin of the NEXT low run to produce
  size_t run_end = fold;
  size_t li = fold;
  const auto next_low_run = [&] {
    run_end = run_begin;
    if (run_end == 0) {
      li = 0;
      run_begin = 0;
      return;
    }
    const uint32_t c = order_[run_end - 1].count;
    run_begin = run_end - 1;
    while (run_begin > 0 && order_[run_begin - 1].count == c) --run_begin;
    li = run_begin;
  };
  next_low_run();
  size_t hi = fold;
  while (true) {
    if (li == run_end && run_end > 0) next_low_run();
    const bool low = li < run_end;
    const bool high = hi < m;
    if (!low && !high) break;
    bool take_low;
    if (low && high) {
      const uint64_t limb = n - 2 * static_cast<uint64_t>(order_[li].count);
      const uint64_t himb = 2 * static_cast<uint64_t>(order_[hi].count) - n;
      take_low = limb != himb ? limb < himb
                              : order_[li].entity < order_[hi].entity;
    } else {
      take_low = low;
    }
    const EntityCount& ec = take_low ? order_[li++] : order_[hi++];
    if (excluded != nullptr && ec.entity < excluded->size() &&
        (*excluded)[ec.entity]) {
      continue;
    }
    out->push_back(ec);
  }
  return true;
}

void DeltaCounter::NotePartition(const SubCollection& parent,
                                 const SubCollection& kept,
                                 SubCollection dropped) {
  if (!enabled_) return;
  if (!chain_.Arm(parent.Fingerprint(), kept.Fingerprint())) {
    // We never counted this parent (a cache hit answered the last step, or
    // the session started elsewhere): nothing to derive from.
    sibling_ = SubCollection();
    return;
  }
  sibling_ = std::move(dropped);
}

void DeltaCounter::SeedChild(const SubCollection& parent,
                             const SubCollection& kept,
                             const std::vector<EntityCount>& half_counts,
                             bool half_is_kept) {
  if (!enabled_) return;
  if (!chain_.valid() || parent.Fingerprint() != chain_.counted_fp()) {
    Invalidate();
    return;
  }
  const uint32_t n = static_cast<uint32_t>(kept.size());
  if (half_is_kept) {
    // The counted half IS the next view: keep its informative entries.
    scratch_.clear();
    scratch_.reserve(half_counts.size());
    for (const EntityCount& ec : half_counts) {
      if (ec.count != n) scratch_.push_back(ec);
    }
    retained_.swap(scratch_);
  } else {
    // kept = parent - half: subtract with a two-pointer merge (half_counts
    // is restricted to the parent list, so every entry lines up). Entities
    // masked at the parent's emit are absent from half_counts — subtracting
    // nothing would leave them with a stale parent count, possibly past the
    // child's size. The snapshot gate keeps them masked for as long as this
    // state serves, so dropping them outright loses no candidate, and it
    // keeps every retained count a true child count in [1, n - 1] — the
    // invariant the counting-sort order rebuild indexes buckets by.
    mask_scratch_.assign(last_emit_mask_.begin(), last_emit_mask_.end());
    std::sort(mask_scratch_.begin(), mask_scratch_.end());
    size_t write = 0;
    size_t hi = 0;
    size_t mi = 0;
    for (const EntityCount& pc : retained_) {
      while (mi < mask_scratch_.size() && mask_scratch_[mi] < pc.entity) ++mi;
      if (mi < mask_scratch_.size() && mask_scratch_[mi] == pc.entity) continue;
      uint32_t c = pc.count;
      if (hi < half_counts.size() && half_counts[hi].entity == pc.entity) {
        c -= half_counts[hi].count;
        ++hi;
      }
      if (c != 0 && c != n) retained_[write++] = EntityCount{pc.entity, c};
    }
    retained_.resize(write);
  }
  // The seeded list derives from the last emitted output, so it carries
  // that emit's mask filtering — snapshot accordingly.
  chain_.SetMaskSnapshot(last_emit_mask_);
  sibling_ = SubCollection();
  chain_.CommitDelta(kept.Fingerprint());
  order_state_ = OrderState::kStale;
  // A seeded derivation is a delta serve in the registry mix too; the
  // step's own serve path stays whatever its CountInformative reports
  // (typically a re-emit of this list).
  if (obs::Enabled()) ServeCounter(obs::ServePath::kDelta)->Add(1);
}

void DeltaCounter::Adopt(uint64_t fp, const std::vector<EntityCount>& counts,
                         const EntityExclusion* excluded) {
  if (!enabled_) return;
  retained_.assign(counts.begin(), counts.end());
  CountChain::CopyMaskIds(excluded, &last_emit_mask_);
  chain_.Adopt(fp, excluded);
  sibling_ = SubCollection();
  order_state_ = OrderState::kStale;
}

void DeltaCounter::Invalidate() {
  chain_.Invalidate();
  sibling_ = SubCollection();
  order_state_ = OrderState::kStale;
}

void DeltaCounter::Release() {
  Invalidate();
  chain_.Release();
  retained_ = {};
  order_ = {};
  last_emit_mask_ = {};
  scratch_ = {};
  moved_ = {};
  bucket_ = {};
  mask_scratch_ = {};
  counter_.Release();
}

}  // namespace setdisc
