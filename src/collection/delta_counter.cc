#include "collection/delta_counter.h"

#include <utility>

#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace setdisc {

namespace {

/// Process-wide serve-path mix {full, delta, reemit}: the per-instance
/// DeltaCounterStats die with their selector, the registry counters are
/// what live monitoring reads.
obs::Counter* ServeCounter(obs::ServePath path) {
  static obs::Counter* const full = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "full"}});
  static obs::Counter* const delta = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "delta"}});
  static obs::Counter* const reemit =
      obs::MetricsRegistry::Default().GetCounter("setdisc_delta_serves_total",
                                                 {{"path", "reemit"}});
  switch (path) {
    case obs::ServePath::kDelta: return delta;
    case obs::ServePath::kReemit: return reemit;
    default: return full;
  }
}

void NoteServe(obs::ServePath path) {
  obs::NoteServePath(path);
  if (obs::Enabled()) ServeCounter(path)->Add(1);
}

}  // namespace

void DeltaCounter::EmitFiltered(const std::vector<EntityCount>& retained,
                                const EntityExclusion* excluded,
                                std::vector<EntityCount>* out) {
  out->clear();
  out->reserve(retained.size());
  for (const EntityCount& ec : retained) {
    if (excluded != nullptr && ec.entity < excluded->size() &&
        (*excluded)[ec.entity]) {
      continue;
    }
    out->push_back(ec);
  }
}

void DeltaCounter::CountInformative(const SubCollection& sub,
                                    std::vector<EntityCount>* out,
                                    const EntityExclusion* excluded) {
  obs::PhaseTimer timer(obs::Phase::kCount);
  if (!enabled_) {
    NoteServe(obs::ServePath::kFull);
    counter_.CountInformative(sub, out, excluded);
    return;
  }
  const uint32_t n = static_cast<uint32_t>(sub.size());
  const uint64_t fp = sub.Fingerprint();
  // The serve gate: if the mask shrank (an entity excluded at retention
  // time is no longer excluded), the retained list may be missing
  // candidates — retention is useless, recount. Sessions only grow the
  // mask, so this passes there; the gate exists for arbitrary callers.
  const bool mask_ok = MaskStillCovers(excluded);

  if (valid_ && mask_ok && pending_ && fp == expected_fp_) {
    // Derivation armed and the view is the expected child. Dense-counting
    // the dropped sibling plus one pass over the parent list costs sibling
    // elements + parent entities; recounting the view costs its own
    // elements (plus its emit). Take whichever is cheaper — both re-seed
    // the state.
    pending_ = false;
    const size_t delta_cost = sibling_.TotalElements() + retained_.size();
    const size_t full_cost = sub.TotalElements();
    if (delta_cost < full_cost) {
      counter_.CountDense(sibling_);
      std::span<const uint32_t> dense = counter_.dense();
      // One pass over the parent list derives the child: subtract the
      // sibling's dense count and keep what stays informative for the
      // child. Every child entity appears in the parent list (closure; see
      // header), so nothing is missed.
      size_t write = 0;
      for (const EntityCount& pc : retained_) {
        uint32_t c = pc.count;
        if (pc.entity < dense.size()) c -= dense[pc.entity];
        if (c != 0 && c != n) retained_[write++] = EntityCount{pc.entity, c};
      }
      retained_.resize(write);
      ++stats_.delta;
      NoteServe(obs::ServePath::kDelta);
    } else {
      counter_.CountInformative(sub, &retained_, excluded);
      SnapshotMask(excluded);
      ++stats_.full;
      NoteServe(obs::ServePath::kFull);
    }
    sibling_ = SubCollection();
    counted_fp_ = fp;
    EmitFiltered(retained_, excluded, out);
    CopyMaskIds(excluded, &last_emit_mask_);
    return;
  }

  if (valid_ && mask_ok && !pending_ && fp == counted_fp_) {
    // Same view again — a SeedChild handoff, the §6 don't-know loop
    // (exclusion grew, candidates did not), or a repeated root Select. No
    // counting: re-filter under the current mask.
    ++stats_.reemits;
    NoteServe(obs::ServePath::kReemit);
    EmitFiltered(retained_, excluded, out);
    CopyMaskIds(excluded, &last_emit_mask_);
    return;
  }

  // Unknown view: the chain broke (cache hit skipped a count, backtrack,
  // different collection, first call). Full count re-seeds the state.
  if (pending_ || valid_) {
    if (pending_) ++stats_.invalidations;
    pending_ = false;
    sibling_ = SubCollection();
  }
  counter_.CountInformative(sub, &retained_, excluded);
  SnapshotMask(excluded);
  counted_fp_ = fp;
  valid_ = true;
  ++stats_.full;
  NoteServe(obs::ServePath::kFull);
  out->assign(retained_.begin(), retained_.end());
  CopyMaskIds(excluded, &last_emit_mask_);
}

void DeltaCounter::NotePartition(const SubCollection& parent,
                                 const SubCollection& kept,
                                 SubCollection dropped) {
  if (!enabled_) return;
  if (!valid_ || parent.Fingerprint() != counted_fp_) {
    // We never counted this parent (a cache hit answered the last step, or
    // the session started elsewhere): nothing to derive from.
    Invalidate();
    return;
  }
  expected_fp_ = kept.Fingerprint();
  sibling_ = std::move(dropped);
  pending_ = true;
}

void DeltaCounter::SeedChild(const SubCollection& parent,
                             const SubCollection& kept,
                             const std::vector<EntityCount>& half_counts,
                             bool half_is_kept) {
  if (!enabled_) return;
  if (!valid_ || parent.Fingerprint() != counted_fp_) {
    Invalidate();
    return;
  }
  const uint32_t n = static_cast<uint32_t>(kept.size());
  if (half_is_kept) {
    // The counted half IS the next view: keep its informative entries.
    scratch_.clear();
    scratch_.reserve(half_counts.size());
    for (const EntityCount& ec : half_counts) {
      if (ec.count != n) scratch_.push_back(ec);
    }
    retained_.swap(scratch_);
  } else {
    // kept = parent - half: subtract with a two-pointer merge (half_counts
    // is restricted to the parent list, so every entry lines up).
    size_t write = 0;
    size_t hi = 0;
    for (const EntityCount& pc : retained_) {
      uint32_t c = pc.count;
      if (hi < half_counts.size() && half_counts[hi].entity == pc.entity) {
        c -= half_counts[hi].count;
        ++hi;
      }
      if (c != 0 && c != n) retained_[write++] = EntityCount{pc.entity, c};
    }
    retained_.resize(write);
  }
  // The seeded list derives from the last emitted output, so it carries
  // that emit's mask filtering — snapshot accordingly.
  retained_mask_ = last_emit_mask_;
  counted_fp_ = kept.Fingerprint();
  pending_ = false;
  sibling_ = SubCollection();
  ++stats_.delta;
  // A seeded derivation is a delta serve in the registry mix too; the
  // step's own serve path stays whatever its CountInformative reports
  // (typically a re-emit of this list).
  if (obs::Enabled()) ServeCounter(obs::ServePath::kDelta)->Add(1);
}

void DeltaCounter::Adopt(uint64_t fp, const std::vector<EntityCount>& counts,
                         const EntityExclusion* excluded) {
  if (!enabled_) return;
  retained_.assign(counts.begin(), counts.end());
  SnapshotMask(excluded);
  CopyMaskIds(excluded, &last_emit_mask_);
  counted_fp_ = fp;
  valid_ = true;
  pending_ = false;
  sibling_ = SubCollection();
}

void DeltaCounter::Invalidate() {
  if (valid_ || pending_) ++stats_.invalidations;
  valid_ = false;
  pending_ = false;
  sibling_ = SubCollection();
}

void DeltaCounter::Release() {
  Invalidate();
  retained_ = {};
  retained_mask_ = {};
  last_emit_mask_ = {};
  scratch_ = {};
  counter_.Release();
}

}  // namespace setdisc
