#include "collection/count_kernels.h"

#include "collection/entity_counter.h"

// With SETDISC_KERNEL_MULTIARCH on (gcc/x86-64 only), each kernel is cloned
// per target ISA and dispatched once at load time via ifunc — the portable
// way to let the derive loops use wider vectors without shipping an
// -march-specific binary. The clones are semantically identical (same
// scalar semantics, just wider registers); count_kernels_test runs against
// whatever clone the host dispatches to, so the parity check covers the
// selected ISA.
#if defined(SETDISC_KERNEL_MULTIARCH) && defined(__GNUC__) && \
    !defined(__clang__) && defined(__x86_64__)
#define SETDISC_KERNEL_TARGETS \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define SETDISC_KERNEL_TARGETS
#endif

namespace setdisc::kernels {

SETDISC_KERNEL_TARGETS
size_t AccumulateCounts(const SubCollection& sub, uint32_t* counts,
                        EntityId* touched) {
  const SetCollection& collection = sub.collection();
  size_t t = 0;
  for (SetId s : sub.ids()) {
    std::span<const EntityId> elems = collection.set(s);
    const EntityId* p = elems.data();
    const EntityId* const end = p + elems.size();
    // The store to touched[t] is unconditional (overwritten in place until
    // an actual first touch advances t): no branch in the loop body, only
    // the gather-increment's data dependence.
    for (; p != end; ++p) {
      const EntityId e = *p;
      touched[t] = e;
      t += counts[e]++ == 0;
    }
  }
  return t;
}

SETDISC_KERNEL_TARGETS
size_t GatherChild(const EntityCount* parent, size_t m, const uint32_t* dense,
                   size_t dense_size, uint32_t n, bool drop_full,
                   EntityCount* out) {
  // With drop_full off, `full` is 0 and the second comparison collapses
  // into the first (a nonzero count never equals 0).
  const uint32_t full = drop_full ? n : 0;
  size_t w = 0;
  for (size_t i = 0; i < m; ++i) {
    const EntityId e = parent[i].entity;
    const uint32_t c = e < dense_size ? dense[e] : 0;
    out[w] = EntityCount{e, c};
    w += (c != 0) & (c != full);
  }
  return w;
}

SETDISC_KERNEL_TARGETS
size_t SubtractChild(const EntityCount* parent, size_t m, const uint32_t* dense,
                     size_t dense_size, uint32_t n, bool drop_full,
                     EntityCount* out) {
  const uint32_t full = drop_full ? n : 0;
  size_t w = 0;
  for (size_t i = 0; i < m; ++i) {
    const EntityId e = parent[i].entity;
    uint32_t c = parent[i].count;
    c -= e < dense_size ? dense[e] : 0;
    out[w] = EntityCount{e, c};
    w += (c != 0) & (c != full);
  }
  return w;
}

}  // namespace setdisc::kernels
