#include "collection/entity_counter.h"

#include <algorithm>

namespace setdisc {

void EntityCounter::EnsureCapacity(EntityId universe) {
  if (counts_.size() < universe) counts_.resize(universe, 0);
}

void EntityCounter::CountDense(const SubCollection& sub) {
  if (dense_live_) ClearDense();
  EnsureCapacity(sub.collection().universe_size());
  touched_.clear();
  for (SetId s : sub.ids()) {
    for (EntityId e : sub.collection().set(s)) {
      if (counts_[e] == 0) touched_.push_back(e);
      ++counts_[e];
    }
  }
  dense_live_ = true;
}

void EntityCounter::CountInformative(const SubCollection& sub,
                                     std::vector<EntityCount>* out,
                                     const EntityExclusion* excluded) {
  out->clear();
  if (dense_live_) ClearDense();
  const EntityId universe = sub.collection().universe_size();
  EnsureCapacity(universe);
  touched_.clear();
  for (SetId s : sub.ids()) {
    for (EntityId e : sub.collection().set(s)) {
      if (counts_[e] == 0) touched_.push_back(e);
      ++counts_[e];
    }
  }
  const uint32_t n = static_cast<uint32_t>(sub.size());
  // Ascending entity order keeps all downstream tie-breaking deterministic.
  // Two ways to get it: sort the touched list (O(t log t) — wins when few
  // entities were touched) or sweep the dense count array in id order
  // (O(m') sequential — wins when t approaches the universe, the usual
  // root-of-a-large-collection shape). Either way the scratch is cleared
  // entry-by-entry as it is read, never wholesale.
  out->reserve(touched_.size());
  if (DenseSweepIsCheaper(touched_.size(), universe)) {
    for (EntityId e = 0; e < universe; ++e) {
      uint32_t c = counts_[e];
      if (c == 0) continue;
      counts_[e] = 0;
      if (c == n) continue;  // uninformative
      if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) {
        continue;
      }
      out->push_back(EntityCount{e, c});
    }
    return;
  }
  std::sort(touched_.begin(), touched_.end());
  for (EntityId e : touched_) {
    uint32_t c = counts_[e];
    counts_[e] = 0;
    if (c == 0 || c == n) continue;  // uninformative
    if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) continue;
    out->push_back(EntityCount{e, c});
  }
}

void EntityCounter::CountAll(const SubCollection& sub,
                             std::vector<EntityCount>* out,
                             const EntityExclusion* excluded) {
  out->clear();
  if (dense_live_) ClearDense();
  const EntityId universe = sub.collection().universe_size();
  EnsureCapacity(universe);
  touched_.clear();
  for (SetId s : sub.ids()) {
    for (EntityId e : sub.collection().set(s)) {
      if (counts_[e] == 0) touched_.push_back(e);
      ++counts_[e];
    }
  }
  out->reserve(touched_.size());
  if (DenseSweepIsCheaper(touched_.size(), universe)) {
    for (EntityId e = 0; e < universe; ++e) {
      uint32_t c = counts_[e];
      if (c == 0) continue;
      counts_[e] = 0;
      if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) {
        continue;
      }
      out->push_back(EntityCount{e, c});
    }
    return;
  }
  std::sort(touched_.begin(), touched_.end());
  for (EntityId e : touched_) {
    uint32_t c = counts_[e];
    counts_[e] = 0;
    if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) continue;
    out->push_back(EntityCount{e, c});
  }
}

}  // namespace setdisc
