#include "collection/entity_counter.h"

#include <algorithm>

#include "collection/count_kernels.h"

namespace setdisc {

void EntityCounter::EnsureCapacity(EntityId universe) {
  if (counts_.size() < universe) counts_.resize(universe, 0);
  // The kernel writes touched_[t] unconditionally, so the list needs room
  // for every possibly-distinct entity up front PLUS one spare slot: once
  // every entity has been touched, subsequent iterations keep overwriting
  // the slot just past the live prefix.
  if (touched_.size() < static_cast<size_t>(universe) + 1) {
    touched_.resize(static_cast<size_t>(universe) + 1);
  }
}

void EntityCounter::CountDense(const SubCollection& sub) {
  if (dense_live_) ClearDense();
  EnsureCapacity(sub.collection().universe_size());
  num_touched_ =
      kernels::AccumulateCounts(sub, counts_.data(), touched_.data());
  dense_live_ = true;
}

void EntityCounter::CountInformative(const SubCollection& sub,
                                     std::vector<EntityCount>* out,
                                     const EntityExclusion* excluded) {
  out->clear();
  if (dense_live_) ClearDense();
  const EntityId universe = sub.collection().universe_size();
  EnsureCapacity(universe);
  num_touched_ =
      kernels::AccumulateCounts(sub, counts_.data(), touched_.data());
  const uint32_t n = static_cast<uint32_t>(sub.size());
  // Ascending entity order keeps all downstream tie-breaking deterministic.
  // Two ways to get it: sort the touched list (O(t log t) — wins when few
  // entities were touched) or sweep the dense count array in id order
  // (O(m') sequential — wins when t approaches the universe, the usual
  // root-of-a-large-collection shape). Either way the scratch is cleared
  // entry-by-entry as it is read, never wholesale.
  out->reserve(num_touched_);
  if (DenseSweepIsCheaper(num_touched_, universe)) {
    num_touched_ = 0;
    for (EntityId e = 0; e < universe; ++e) {
      uint32_t c = counts_[e];
      if (c == 0) continue;
      counts_[e] = 0;
      if (c == n) continue;  // uninformative
      if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) {
        continue;
      }
      out->push_back(EntityCount{e, c});
    }
    return;
  }
  std::sort(touched_.begin(), touched_.begin() + num_touched_);
  for (size_t i = 0; i < num_touched_; ++i) {
    const EntityId e = touched_[i];
    uint32_t c = counts_[e];
    counts_[e] = 0;
    if (c == 0 || c == n) continue;  // uninformative
    if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) continue;
    out->push_back(EntityCount{e, c});
  }
  num_touched_ = 0;
}

void EntityCounter::CountAll(const SubCollection& sub,
                             std::vector<EntityCount>* out,
                             const EntityExclusion* excluded) {
  out->clear();
  if (dense_live_) ClearDense();
  const EntityId universe = sub.collection().universe_size();
  EnsureCapacity(universe);
  num_touched_ =
      kernels::AccumulateCounts(sub, counts_.data(), touched_.data());
  out->reserve(num_touched_);
  if (DenseSweepIsCheaper(num_touched_, universe)) {
    num_touched_ = 0;
    for (EntityId e = 0; e < universe; ++e) {
      uint32_t c = counts_[e];
      if (c == 0) continue;
      counts_[e] = 0;
      if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) {
        continue;
      }
      out->push_back(EntityCount{e, c});
    }
    return;
  }
  std::sort(touched_.begin(), touched_.begin() + num_touched_);
  for (size_t i = 0; i < num_touched_; ++i) {
    const EntityId e = touched_[i];
    uint32_t c = counts_[e];
    counts_[e] = 0;
    if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) continue;
    out->push_back(EntityCount{e, c});
  }
  num_touched_ = 0;
}

}  // namespace setdisc
