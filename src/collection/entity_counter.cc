#include "collection/entity_counter.h"

#include <algorithm>

namespace setdisc {

void EntityCounter::EnsureCapacity(EntityId universe) {
  if (counts_.size() < universe) counts_.resize(universe, 0);
}

void EntityCounter::CountInformative(const SubCollection& sub,
                                     std::vector<EntityCount>* out,
                                     const EntityExclusion* excluded) {
  out->clear();
  EnsureCapacity(sub.collection().universe_size());
  touched_.clear();
  for (SetId s : sub.ids()) {
    for (EntityId e : sub.collection().set(s)) {
      if (counts_[e] == 0) touched_.push_back(e);
      ++counts_[e];
    }
  }
  const uint32_t n = static_cast<uint32_t>(sub.size());
  // Ascending entity order keeps all downstream tie-breaking deterministic.
  std::sort(touched_.begin(), touched_.end());
  out->reserve(touched_.size());
  for (EntityId e : touched_) {
    uint32_t c = counts_[e];
    counts_[e] = 0;
    if (c == 0 || c == n) continue;  // uninformative
    if (excluded != nullptr && e < excluded->size() && (*excluded)[e]) continue;
    out->push_back(EntityCount{e, c});
  }
}

void EntityCounter::CountAll(const SubCollection& sub,
                             std::vector<EntityCount>* out) {
  out->clear();
  EnsureCapacity(sub.collection().universe_size());
  touched_.clear();
  for (SetId s : sub.ids()) {
    for (EntityId e : sub.collection().set(s)) {
      if (counts_[e] == 0) touched_.push_back(e);
      ++counts_[e];
    }
  }
  std::sort(touched_.begin(), touched_.end());
  out->reserve(touched_.size());
  for (EntityId e : touched_) {
    out->push_back(EntityCount{e, counts_[e]});
    counts_[e] = 0;
  }
}

}  // namespace setdisc
