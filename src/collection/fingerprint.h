#pragma once

/// \file fingerprint.h
/// 64-bit fingerprint primitives shared by the collection layer.
///
/// Fingerprints identify *values* (a sub-collection's member ids, an
/// exclusion mask's set bits) across sessions, so they feed cross-session
/// cache keys (service/selection_cache.h). Two constructions:
///
///  * sequences (sorted set-id lists): an order-dependent running hash,
///    seeded with kFingerprintSeed and extended one element at a time with
///    FingerprintAppend — which is what makes the hash *incremental*:
///    SubCollection::Partition() derives both children's fingerprints during
///    the partition pass instead of rescanning;
///  * bit sets (exclusion masks): XOR of per-element mixes, so setting or
///    clearing a bit updates the fingerprint in O(1) (EntityExclusion).
///
/// Collisions are possible in principle (64 bits); the randomized parity
/// suite in tests/selection_cache_test.cc exists to catch any construction
/// weak enough to collide in practice.

#include <cstdint>
#include <string_view>

namespace setdisc {

/// Seed for sequence fingerprints (arbitrary non-zero odd constant).
inline constexpr uint64_t kFingerprintSeed = 0x8F1BBCDCBFA53E0BULL;

/// SplitMix64 finalizer: full-avalanche mix of one 64-bit value.
inline uint64_t FingerprintMix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

/// Extends a running sequence fingerprint by one element (order-dependent).
inline uint64_t FingerprintAppend(uint64_t h, uint64_t v) {
  return (h * 0x9E3779B97F4A7C15ULL) ^ FingerprintMix(v + 0x2545F4914F6CDD1DULL);
}

/// Per-element term of a bit-set fingerprint; XOR these for every set bit.
/// The +1 keeps element 0 away from the all-zero term.
inline uint64_t FingerprintBit(uint64_t element) {
  return FingerprintMix(element + 1);
}

/// Sequence fingerprint of a byte string (selector names, labels).
inline uint64_t FingerprintString(std::string_view s) {
  uint64_t h = kFingerprintSeed;
  for (char c : s) {
    h = FingerprintAppend(h, static_cast<uint64_t>(static_cast<uint8_t>(c)));
  }
  return h;
}

}  // namespace setdisc
