#pragma once

/// \file delta_counter.h
/// Differential counting: derive a child's entity counts from its parent's
/// instead of recounting.
///
/// The paper's cost model makes the per-step counting pass over the
/// candidate sub-collection the dominant cost of every selector. But the
/// steps of a session are not independent scans: `Partition(e)` splits C
/// into (C1, C2) with counts(C2) = counts(C) - counts(C1) exactly, and the
/// parent's counts were just computed. A DeltaCounter therefore retains the
/// counts of the last view it counted, and when told that the next view is
/// one half of a partition of that view, produces the child's counts by
/// dense-counting only the *smaller* half (no sort, no list emission) and
/// deriving the rest with one sequential pass over the parent's list.
///
/// Four paths, chosen per call:
///
///   * full     — the view is unknown: count it, retain, emit;
///   * delta    — the view is the expected child of the retained parent and
///                dense-counting the dropped sibling plus one derivation
///                pass is cheaper than rescanning the view: do that;
///   * seeded   — the caller already counted one half of the partition
///                (k-LP's lookahead counts both halves of the candidate it
///                chooses) and handed it to SeedChild: the child's counts
///                were derived at partition time, so this count is a
///   * re-emit  — the view IS the retained view: no counting at all, just
///                re-filter the retained list (also the §6 don't-know loop:
///                exclusion added, re-select on the same candidates).
///
/// Representation: the retained state is the *informative* count list of
/// the view — exactly what CountInformative emits, entities with
/// 0 < c < |view| in ascending order, filtered by the exclusion mask in
/// force when it was computed — plus a snapshot of which entities that mask
/// excluded. That closure is what makes derivation sound: an entity
/// uninformative at any ancestor (present in all or none of its sets) is
/// uninformative in every descendant, and an entity masked out at retention
/// time can only be re-admitted by *removing* it from the mask — which the
/// serve gate detects: retained state is served only while every
/// snapshotted exclusion is still excluded (O(snapshot) per check; §6 masks
/// are small and only grow, so in sessions the gate always passes), any
/// other mask falls back to a full recount. Every emit path additionally
/// re-applies the current mask, so output stays byte-identical to
/// EntityCounter::CountInformative on the same (view, mask) for ARBITRARY
/// mask sequences — not just growing ones — the invariant the randomized
/// delta parity suite pins.
///
/// Who arms it: the discovery session reports each answer's partition via
/// EntitySelector::NotePartition (service/discovery_session.cc), handing
/// over the dropped half it would otherwise free. Anything that breaks the
/// parent chain — a backtrack, a cache hit that skipped counting, a fresh
/// session on other candidates — just fails the fingerprint check and falls
/// back to a full count, which re-seeds the state. Single-thread confinement
/// like every counting scratch: one DeltaCounter per selector per session.

#include <cstdint>
#include <vector>

#include "collection/entity_counter.h"
#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

/// Where each CountInformative call was served. `full` seeds the state,
/// `delta` covers the sibling-count derivations (including SeedChild
/// handoffs), `reemits` are the count-free paths; invalidations count
/// explicit resets (backtracks) plus chain breaks detected by the
/// fingerprint check.
struct DeltaCounterStats {
  uint64_t full = 0;
  uint64_t delta = 0;
  uint64_t reemits = 0;
  uint64_t invalidations = 0;

  uint64_t total() const { return full + delta + reemits; }
};

/// A counting workspace that retains the last result for derivation.
/// Drop-in for EntityCounter::CountInformative; not thread-safe.
class DeltaCounter {
 public:
  DeltaCounter() = default;

  /// When disabled, every call recounts from scratch with no retention —
  /// the full-recount baseline bench_counting compares against.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled_) Release();
  }
  bool enabled() const { return enabled_; }

  /// Appends to `out` every informative entity of `sub` with its count, in
  /// ascending entity-id order, skipping entities marked in `excluded` —
  /// byte-identical to EntityCounter::CountInformative — via whichever of
  /// the paths above is valid and cheapest.
  void CountInformative(const SubCollection& sub, std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr);

  /// Declares that `kept` and `dropped` are the two halves of a partition of
  /// `parent`. If the retained counts describe `parent`, arms the delta path
  /// for the next CountInformative(kept); otherwise invalidates. Takes
  /// ownership of `dropped` (the caller was about to free it anyway).
  void NotePartition(const SubCollection& parent, const SubCollection& kept,
                     SubCollection dropped);

  /// NotePartition for a caller that already counted one half of the
  /// partition. `half_counts` are that half's counts restricted to the
  /// parent's retained list (which is how k-LP's lookahead derives them):
  /// ascending, every entity of the parent list whose count in the half is
  /// non-zero, uninformative-within-the-half entries included. If the
  /// retained counts describe `parent`, the kept child's list is derived
  /// right here — filtering `half_counts` if `half_is_kept`, subtracting it
  /// from the parent list otherwise — and the next CountInformative(kept)
  /// is a count-free re-emit; otherwise invalidates.
  void SeedChild(const SubCollection& parent, const SubCollection& kept,
                 const std::vector<EntityCount>& half_counts,
                 bool half_is_kept);

  /// True when CountInformative on a view with this fingerprint, under
  /// `excluded`, would be a count-free re-emit. Lets layered counters (the
  /// sharded k-LP selector) skip their own counting pass when this state
  /// already has the answer.
  bool CanReuse(uint64_t fingerprint, const EntityExclusion* excluded) const {
    return enabled_ && valid_ && !pending_ && fingerprint == counted_fp_ &&
           MaskStillCovers(excluded);
  }

  /// Installs externally computed counts as the retained state for the view
  /// with fingerprint `fp`. `counts` must be what CountInformative(view,
  /// excluded) emits — the sharded path adopts its merged per-shard counts
  /// here so the lookahead's SeedChild has a parent to derive from.
  void Adopt(uint64_t fp, const std::vector<EntityCount>& counts,
             const EntityExclusion* excluded);

  /// Forgets the retained counts and any armed partition; the next count is
  /// full. Called on backtracks and verify failures, where the candidate
  /// view jumps to an ancestor state.
  void Invalidate();

  /// Invalidate() plus freeing all retained memory, including the inner
  /// counter's dense scratch — the shrink-on-idle hook SessionManager calls
  /// on parked sessions.
  void Release();

  const DeltaCounterStats& stats() const { return stats_; }

 private:
  /// out = retained_, minus entities the (current) mask excludes. The
  /// retained list is informative by construction, so this is the whole
  /// emit filter.
  static void EmitFiltered(const std::vector<EntityCount>& retained,
                           const EntityExclusion* excluded,
                           std::vector<EntityCount>* out);

  /// Serve gate: every entity the retention-time mask excluded must still
  /// be excluded, or the retained list may be missing candidates the
  /// current mask would admit. (Entities the current mask excludes *beyond*
  /// the snapshot are handled by the emit filter.)
  bool MaskStillCovers(const EntityExclusion* excluded) const {
    for (EntityId e : retained_mask_) {
      if (excluded == nullptr || e >= excluded->size() || !(*excluded)[e]) {
        return false;
      }
    }
    return true;
  }

  /// Snapshots the current mask's excluded ids alongside a fresh retention.
  void SnapshotMask(const EntityExclusion* excluded) {
    CopyMaskIds(excluded, &retained_mask_);
  }

  static void CopyMaskIds(const EntityExclusion* excluded,
                          std::vector<EntityId>* out) {
    if (excluded == nullptr) {
      out->clear();
    } else {
      std::span<const EntityId> ids = excluded->excluded_ids();
      out->assign(ids.begin(), ids.end());
    }
  }

  EntityCounter counter_;
  bool enabled_ = true;

  /// Retained state: the informative count list of the view with
  /// fingerprint counted_fp_, filtered by the mask whose excluded ids are
  /// snapshotted in retained_mask_; emits re-apply the current mask, and
  /// the serve paths are gated on MaskStillCovers.
  std::vector<EntityCount> retained_;
  std::vector<EntityId> retained_mask_;
  /// The mask the last CountInformative/Adopt emitted under: what a
  /// SeedChild list (derived from that emitted output) is filtered by.
  std::vector<EntityId> last_emit_mask_;
  uint64_t counted_fp_ = 0;
  bool valid_ = false;

  /// Armed derivation: the view with fingerprint expected_fp_ is the kept
  /// half of a partition of the counted view; sibling_ is the dropped half.
  SubCollection sibling_;
  uint64_t expected_fp_ = 0;
  bool pending_ = false;

  std::vector<EntityCount> scratch_;
  DeltaCounterStats stats_;
};

}  // namespace setdisc
