#pragma once

/// \file delta_counter.h
/// Differential counting: derive a child's entity counts from its parent's
/// instead of recounting.
///
/// The paper's cost model makes the per-step counting pass over the
/// candidate sub-collection the dominant cost of every selector. But the
/// steps of a session are not independent scans: `Partition(e)` splits C
/// into (C1, C2) with counts(C2) = counts(C) - counts(C1) exactly, and the
/// parent's counts were just computed. A DeltaCounter therefore retains the
/// counts of the last view it counted, and when told that the next view is
/// one half of a partition of that view, produces the child's counts by
/// dense-counting only the *smaller* half of the partition — the kept view
/// itself or the dropped sibling, whichever has fewer elements — and
/// deriving the rest with one sequential pass over the parent's list
/// (collection/count_kernels.h: GatherChild when the kept half was scanned,
/// SubtractChild when the sibling was). Either way the derivation skips the
/// touched-list sort and separate emission a recount pays, which is why it
/// serves even for the ~even splits the 1-step selectors produce.
///
/// Four paths, chosen per call (CountChain::Classify plus the cost check):
///
///   * full     — the view is unknown: count it, retain, emit;
///   * delta    — the view is the expected child of the retained parent and
///                scanning the smaller half plus one derivation pass is
///                cheaper than rescanning the view: do that;
///   * seeded   — the caller already counted one half of the partition
///                (k-LP's lookahead counts both halves of the candidate it
///                chooses) and handed it to SeedChild: the child's counts
///                were derived at partition time, so this count is a
///   * re-emit  — the view IS the retained view: no counting at all, just
///                re-filter the retained list (also the §6 don't-know loop:
///                exclusion added, re-select on the same candidates).
///
/// Representation: the retained state is the *informative* count list of
/// the view — exactly what CountInformative emits, entities with
/// 0 < c < |view| in ascending order, filtered by the exclusion mask in
/// force when it was computed — plus a snapshot of which entities that mask
/// excluded. That closure is what makes derivation sound: an entity
/// uninformative at any ancestor (present in all or none of its sets) is
/// uninformative in every descendant, and an entity masked out at retention
/// time can only be re-admitted by *removing* it from the mask — which the
/// serve gate detects: retained state is served only while every
/// snapshotted exclusion is still excluded (O(snapshot) per check; §6 masks
/// are small and only grow, so in sessions the gate always passes), any
/// other mask falls back to a full recount. Every emit path additionally
/// re-applies the current mask, so output stays byte-identical to
/// EntityCounter::CountInformative on the same (view, mask) for ARBITRARY
/// mask sequences — not just growing ones — the invariant the randomized
/// delta parity suite pins.
///
/// Retained candidate ORDER (set_retain_order): alongside the counts, the
/// counter can keep the same list sorted by (count, entity) and maintain it
/// across the chain — repaired in place on a sibling-subtraction (only the
/// entities the sibling touched move; untouched entities keep their relative
/// order), rebuilt by an O(m + n) counting sort when the derivation rewrote
/// every count (gather path, SeedChild) or the chain broke. From that list
/// EmitMostEvenOrder produces the (imbalance, entity)-sorted candidate
/// order k-LP's line 11 needs with a two-wing merge around the n/2 fold —
/// byte-identical to std::sort with the comparator, at O(m) per emit and
/// never an O(m log m) comparison sort on the serve path. Memory cost: one
/// extra EntityCount (8 B) per retained candidate plus an O(n) bucket
/// array, both freed by Release().
///
/// Who arms it: the discovery session reports each answer's partition via
/// EntitySelector::NotePartition (service/discovery_session.cc), handing
/// over the dropped half it would otherwise free. Anything that breaks the
/// parent chain — a backtrack, a cache hit that skipped counting, a fresh
/// session on other candidates — just fails the fingerprint check and falls
/// back to a full count, which re-seeds the state. Single-thread confinement
/// like every counting scratch: one DeltaCounter per selector per session.

#include <cstdint>
#include <vector>

#include "collection/count_chain.h"
#include "collection/entity_counter.h"
#include "collection/sub_collection.h"
#include "collection/types.h"

namespace setdisc {

/// A counting workspace that retains the last result for derivation.
/// Drop-in for EntityCounter::CountInformative; not thread-safe.
class DeltaCounter {
 public:
  DeltaCounter() = default;

  /// When disabled, every call recounts from scratch with no retention —
  /// the full-recount baseline bench_counting compares against.
  void set_enabled(bool enabled) {
    enabled_ = enabled;
    if (!enabled_) Release();
  }
  bool enabled() const { return enabled_; }

  /// Opts into maintaining the (count, entity)-sorted view of the retained
  /// list for EmitMostEvenOrder. Off by default: the 1-step selectors scan
  /// their candidates linearly and would pay the upkeep for nothing.
  void set_retain_order(bool retain) {
    retain_order_ = retain;
    if (!retain) {
      order_ = {};
      order_state_ = OrderState::kStale;
    }
  }

  /// Appends to `out` every informative entity of `sub` with its count, in
  /// ascending entity-id order, skipping entities marked in `excluded` —
  /// byte-identical to EntityCounter::CountInformative — via whichever of
  /// the paths above is valid and cheapest.
  void CountInformative(const SubCollection& sub, std::vector<EntityCount>* out,
                        const EntityExclusion* excluded = nullptr);

  /// Fills `out` with exactly the entries the last CountInformative for the
  /// view with fingerprint `fp` (of size `n`) emitted, ordered by
  /// (imbalance vs n, entity) — byte-identical to std::sort of that
  /// emission under the same comparator. Serves from the retained order
  /// (repairing or rebuilding it as needed) in O(m + n); returns false —
  /// leaving `out` untouched — when order retention is off or the retained
  /// state does not describe this (view, mask), in which case the caller
  /// sorts for itself.
  bool EmitMostEvenOrder(uint64_t fp, uint32_t n,
                         const EntityExclusion* excluded,
                         std::vector<EntityCount>* out);

  /// Declares that `kept` and `dropped` are the two halves of a partition of
  /// `parent`. If the retained counts describe `parent`, arms the delta path
  /// for the next CountInformative(kept); otherwise invalidates. Takes
  /// ownership of `dropped` (the caller was about to free it anyway).
  void NotePartition(const SubCollection& parent, const SubCollection& kept,
                     SubCollection dropped);

  /// NotePartition for a caller that already counted one half of the
  /// partition. `half_counts` are that half's counts restricted to the
  /// parent's retained list (which is how k-LP's lookahead derives them):
  /// ascending, every entity of the parent list whose count in the half is
  /// non-zero, uninformative-within-the-half entries included. If the
  /// retained counts describe `parent`, the kept child's list is derived
  /// right here — filtering `half_counts` if `half_is_kept`, subtracting it
  /// from the parent list otherwise — and the next CountInformative(kept)
  /// is a count-free re-emit; otherwise invalidates.
  void SeedChild(const SubCollection& parent, const SubCollection& kept,
                 const std::vector<EntityCount>& half_counts,
                 bool half_is_kept);

  /// True when CountInformative on a view with this fingerprint, under
  /// `excluded`, would be a count-free re-emit. Lets layered counters (the
  /// sharded k-LP selector) skip their own counting pass when this state
  /// already has the answer.
  bool CanReuse(uint64_t fingerprint, const EntityExclusion* excluded) const {
    return enabled_ &&
           chain_.Classify(fingerprint, excluded) == CountServe::kReemit;
  }

  /// Installs externally computed counts as the retained state for the view
  /// with fingerprint `fp`. `counts` must be what CountInformative(view,
  /// excluded) emits — the sharded path adopts its merged per-shard counts
  /// here so the lookahead's SeedChild has a parent to derive from.
  void Adopt(uint64_t fp, const std::vector<EntityCount>& counts,
             const EntityExclusion* excluded);

  /// Forgets the retained counts and any armed partition; the next count is
  /// full. Called on backtracks and verify failures, where the candidate
  /// view jumps to an ancestor state.
  void Invalidate();

  /// Invalidate() plus freeing all retained memory, including the inner
  /// counter's dense scratch — the shrink-on-idle hook SessionManager calls
  /// on parked sessions.
  void Release();

  const DeltaCounterStats& stats() const { return chain_.stats(); }

 private:
  /// Lifecycle of the retained (count, entity)-sorted order relative to
  /// retained_: in sync, out of sync with a pending one-step repair already
  /// applied eagerly (repairs happen inside the derivation while the dense
  /// scratch is live), or stale (rebuild from retained_ on next emit).
  enum class OrderState : uint8_t { kStale, kValid };

  /// out = retained_, minus entities the (current) mask excludes. The
  /// retained list is informative by construction, so this is the whole
  /// emit filter.
  static void EmitFiltered(const std::vector<EntityCount>& retained,
                           const EntityExclusion* excluded,
                           std::vector<EntityCount>* out);

  /// Repairs order_ after a sibling subtraction: entities with a zero dense
  /// count kept their count (and relative order); the touched survivors are
  /// re-sorted and merged back. Falls back to marking the order stale (the
  /// counting-sort rebuild) when the touched set is large enough that its
  /// sort would cost more than rebuilding — the "repair never loses to
  /// re-sort" check.
  void RepairOrderAfterSubtract(std::span<const uint32_t> dense, uint32_t n);

  /// Counting-sort rebuild of order_ from retained_ (counts are in
  /// [1, n - 1]): O(m + n), stable, so entity order within a count group is
  /// ascending — exactly std::sort by (count, entity).
  void RebuildOrder(uint32_t n);

  EntityCounter counter_;
  bool enabled_ = true;
  bool retain_order_ = false;

  /// Retained state: the informative count list of the view the chain's
  /// counted_fp describes, filtered by the mask snapshotted in the chain;
  /// emits re-apply the current mask.
  std::vector<EntityCount> retained_;
  /// retained_ sorted by (count, entity) when order_state_ == kValid.
  std::vector<EntityCount> order_;
  OrderState order_state_ = OrderState::kStale;
  /// The mask the last CountInformative/Adopt emitted under: what a
  /// SeedChild list (derived from that emitted output) is filtered by.
  std::vector<EntityId> last_emit_mask_;

  /// The fingerprint-chain state machine (shared shape with ShardedCounter
  /// and the weighted selectors; collection/count_chain.h).
  CountChain chain_;
  /// Armed derivation payload: the dropped half of the partition whose kept
  /// half the chain expects next.
  SubCollection sibling_;

  std::vector<EntityCount> scratch_;
  std::vector<EntityCount> moved_;
  std::vector<uint32_t> bucket_;
  std::vector<EntityId> mask_scratch_;
};

}  // namespace setdisc
