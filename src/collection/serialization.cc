#include "collection/serialization.h"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace setdisc {

namespace {

constexpr uint64_t kMagic = 0x5345544449534331ULL;  // "SETDISC1"

}  // namespace

Status SaveCollectionBinary(const SetCollection& collection,
                            const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return Status::IoError("cannot open for write: " + path);

  uint64_t magic = kMagic;
  uint64_t n = collection.num_sets();
  uint64_t m = collection.universe_size();
  uint64_t total = collection.total_elements();
  f.write(reinterpret_cast<const char*>(&magic), sizeof magic);
  f.write(reinterpret_cast<const char*>(&n), sizeof n);
  f.write(reinterpret_cast<const char*>(&m), sizeof m);
  f.write(reinterpret_cast<const char*>(&total), sizeof total);
  for (SetId s = 0; s < collection.num_sets(); ++s) {
    uint64_t sz = collection.set_size(s);
    f.write(reinterpret_cast<const char*>(&sz), sizeof sz);
    auto elems = collection.set(s);
    f.write(reinterpret_cast<const char*>(elems.data()),
            static_cast<std::streamsize>(elems.size() * sizeof(EntityId)));
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCollectionBinary(const std::string& path, SetCollection* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for read: " + path);

  // Account for every byte before allocating anything: the header's counts
  // must agree with the file's actual size EXACTLY, so a truncated file, a
  // garbage count (which would otherwise drive a giant vector resize), and
  // trailing junk are all rejected up front with a clear error.
  f.seekg(0, std::ios::end);
  const std::streamoff file_size = f.tellg();
  f.seekg(0, std::ios::beg);
  constexpr std::streamoff kHeaderBytes = 4 * sizeof(uint64_t);
  if (file_size < kHeaderBytes) {
    return Status::Corruption("truncated header: " + path);
  }

  uint64_t magic = 0, n = 0, m = 0, total = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof magic);
  f.read(reinterpret_cast<char*>(&n), sizeof n);
  f.read(reinterpret_cast<char*>(&m), sizeof m);
  f.read(reinterpret_cast<char*>(&total), sizeof total);
  if (!f || magic != kMagic) return Status::Corruption("bad header: " + path);

  const uint64_t body = static_cast<uint64_t>(file_size - kHeaderBytes);
  if (n > body / sizeof(uint64_t)) {
    return Status::Corruption("set count exceeds file size: " + path);
  }
  const uint64_t elem_bytes = body - n * sizeof(uint64_t);
  if (total > elem_bytes / sizeof(EntityId) ||
      total * sizeof(EntityId) != elem_bytes) {
    return Status::Corruption(
        "declared sizes disagree with file size (truncated or trailing "
        "bytes): " + path);
  }

  SetCollectionBuilder builder;
  uint64_t remaining = total;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t sz = 0;
    f.read(reinterpret_cast<char*>(&sz), sizeof sz);
    if (!f) return Status::Corruption("truncated set header: " + path);
    // The per-set size is bounded by the element budget the header declared
    // (and the budget was bounded by the file size above), so a corrupt
    // interior length cannot over-allocate or over-read either.
    if (sz > remaining) {
      return Status::Corruption("set size exceeds declared total: " + path);
    }
    remaining -= sz;
    std::vector<EntityId> elems(sz);
    f.read(reinterpret_cast<char*>(elems.data()),
           static_cast<std::streamsize>(sz * sizeof(EntityId)));
    if (!f) return Status::Corruption("truncated set body: " + path);
    for (EntityId e : elems) {
      if (uint64_t{e} >= m) {
        return Status::Corruption("entity id out of universe range: " + path);
      }
    }
    builder.AddSet(std::move(elems));
  }
  if (remaining != 0) {
    return Status::Corruption("element count mismatch: " + path);
  }
  *out = builder.Build();
  return Status::OK();
}

Status SaveCollectionText(const SetCollection& collection,
                          const std::string& path) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return Status::IoError("cannot open for write: " + path);
  for (SetId s = 0; s < collection.num_sets(); ++s) {
    bool first = true;
    for (EntityId e : collection.set(s)) {
      if (!first) f << ' ';
      first = false;
      f << collection.EntityName(e);
    }
    f << '\n';
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status LoadCollectionText(const std::string& path, SetCollection* out) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open for read: " + path);
  SetCollectionBuilder builder;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::vector<std::string> names;
    std::string tok;
    while (ss >> tok) names.push_back(tok);
    if (!names.empty()) builder.AddSetNamed(names);
  }
  *out = builder.Build();
  return Status::OK();
}

}  // namespace setdisc
