#include "collection/sharded_collection.h"

#include <algorithm>

#include "collection/count_kernels.h"
#include "collection/fingerprint.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "obs/trace.h"
#include "util/status.h"

namespace setdisc {

namespace {

/// Same serve-path registry families the unsharded DeltaCounter feeds
/// (GetCounter returns the one shared instance per family), so the
/// process-wide {full, delta, reemit} mix covers both engines.
void NoteShardedServe(obs::ServePath path) {
  obs::NoteServePath(path);
  if (!obs::Enabled()) return;
  static obs::Counter* const full = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "full"}});
  static obs::Counter* const delta = obs::MetricsRegistry::Default().GetCounter(
      "setdisc_delta_serves_total", {{"path", "delta"}});
  static obs::Counter* const reemit =
      obs::MetricsRegistry::Default().GetCounter("setdisc_delta_serves_total",
                                                 {{"path", "reemit"}});
  switch (path) {
    case obs::ServePath::kDelta: delta->Add(1); break;
    case obs::ServePath::kReemit: reemit->Add(1); break;
    default: full->Add(1); break;
  }
}

}  // namespace

ShardedCollection::ShardedCollection(const SetCollection& base,
                                     ShardingOptions options)
    : base_(&base), options_(options) {
  const size_t num_shards =
      std::min(std::max<size_t>(1, options_.num_shards), kMaxShards);
  options_.num_shards = num_shards;
  const SetId n = base.num_sets();
  shard_of_.resize(n);
  local_of_.resize(n);

  std::vector<SetCollectionBuilder> builders(num_shards);
  std::vector<std::vector<SetId>> to_global(num_shards);
  for (SetId s = 0; s < n; ++s) {
    size_t k = options_.scheme == ShardScheme::kRange
                   ? static_cast<size_t>(static_cast<uint64_t>(s) *
                                         num_shards / n)
                   : static_cast<size_t>(FingerprintMix(s) % num_shards);
    shard_of_[s] = static_cast<uint32_t>(k);
    // Sets enter each shard in ascending global-id order and the builder
    // assigns local ids in insertion order, so local order == global order
    // within a shard — the invariant AppendGlobalIds' merge relies on.
    local_of_[s] = static_cast<SetId>(to_global[k].size());
    to_global[k].push_back(s);
    std::span<const EntityId> elems = base.set(s);
    builders[k].AddSet({elems.begin(), elems.end()}, base.label(s));
  }

  shards_.resize(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shards_[k].collection = builders[k].Build();
    // The base collection is already deduplicated, so no shard can collapse
    // sets and local ids stay aligned with to_global.
    SETDISC_CHECK(shards_[k].collection.num_sets() == to_global[k].size());
    shards_[k].index = std::make_unique<InvertedIndex>(shards_[k].collection);
    shards_[k].to_global = std::move(to_global[k]);
  }

  if (num_shards == 1) {
    // One shard IS the base collection; share its identity so a K=1 sharded
    // manager and an unsharded manager can share a SelectionCache.
    fingerprint_ = base.Fingerprint();
  } else {
    uint64_t h = kFingerprintSeed;
    h = FingerprintAppend(h, num_shards);
    h = FingerprintAppend(h, static_cast<uint64_t>(options_.scheme));
    for (const Shard& shard : shards_) {
      h = FingerprintAppend(h, shard.collection.Fingerprint());
    }
    fingerprint_ = h;
  }
}

ShardedSubCollection ShardedCollection::Full() const {
  std::vector<SubCollection> shards;
  shards.reserve(num_shards());
  for (size_t k = 0; k < num_shards(); ++k) {
    shards.push_back(SubCollection::Full(&shards_[k].collection));
  }
  return ShardedSubCollection(this, std::move(shards));
}

ShardedSubCollection ShardedCollection::SetsContainingAll(
    std::span<const EntityId> entities) const {
  std::vector<SubCollection> shards;
  shards.reserve(num_shards());
  for (size_t k = 0; k < num_shards(); ++k) {
    shards.emplace_back(&shards_[k].collection,
                        shards_[k].index->SetsContainingAll(entities));
  }
  return ShardedSubCollection(this, std::move(shards));
}

ShardedSubCollection::ShardedSubCollection(const ShardedCollection* collection,
                                           std::vector<SubCollection> shards)
    : collection_(collection), shards_(std::move(shards)) {
  SETDISC_CHECK(shards_.size() == collection_->num_shards());
  for (const SubCollection& shard : shards_) size_ += shard.size();
}

std::pair<ShardedSubCollection, ShardedSubCollection>
ShardedSubCollection::Partition(EntityId e, bool derive_fingerprints,
                                ThreadPool* pool) const {
  const size_t num_shards = shards_.size();
  std::vector<SubCollection> in(num_shards), out(num_shards);
  auto split = [&](size_t k) {
    auto [shard_in, shard_out] = shards_[k].Partition(e, derive_fingerprints);
    in[k] = std::move(shard_in);
    out[k] = std::move(shard_out);
  };
  if (pool != nullptr && num_shards > 1 && size_ >= kShardParallelMinSets) {
    pool->ParallelFor(num_shards, split);
  } else {
    for (size_t k = 0; k < num_shards; ++k) split(k);
  }
  return {ShardedSubCollection(collection_, std::move(in)),
          ShardedSubCollection(collection_, std::move(out))};
}

uint64_t ShardedSubCollection::Fingerprint() const {
  if (!fingerprint_valid_) {
    if (shards_.size() == 1) {
      // K=1 local ids are global ids: reuse the unsharded construction so
      // the cache key matches an unsharded session over the same state.
      fingerprint_ = shards_[0].Fingerprint();
    } else {
      uint64_t h = kFingerprintSeed;
      for (const SubCollection& shard : shards_) {
        h = FingerprintAppend(h, shard.Fingerprint());
      }
      fingerprint_ = h;
    }
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

void ShardedSubCollection::AppendGlobalIds(std::vector<SetId>* out) const {
  const size_t num_shards = shards_.size();
  out->reserve(out->size() + size_);
  if (collection_->scheme() == ShardScheme::kRange) {
    // Range shards hold disjoint ascending id ranges: concatenation in shard
    // order is already globally sorted.
    for (size_t k = 0; k < num_shards; ++k) {
      for (SetId local : shards_[k].ids()) {
        out->push_back(collection_->GlobalId(k, local));
      }
    }
    return;
  }
  // Hash sharding interleaves ids: k-way merge on the (ascending) per-shard
  // global sequences.
  std::vector<size_t> cursor(num_shards, 0);
  for (;;) {
    size_t best_k = num_shards;
    SetId best_global = kNoSet;
    for (size_t k = 0; k < num_shards; ++k) {
      if (cursor[k] >= shards_[k].size()) continue;
      SetId global = collection_->GlobalId(k, shards_[k].ids()[cursor[k]]);
      if (best_k == num_shards || global < best_global) {
        best_k = k;
        best_global = global;
      }
    }
    if (best_k == num_shards) break;
    out->push_back(best_global);
    ++cursor[best_k];
  }
}

std::vector<SetId> ShardedSubCollection::GlobalIds() const {
  std::vector<SetId> out;
  AppendGlobalIds(&out);
  return out;
}

SetId ShardedSubCollection::FrontGlobal() const {
  SETDISC_CHECK(size_ > 0);
  SetId best = kNoSet;
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (shards_[k].empty()) continue;
    SetId global = collection_->GlobalId(k, shards_[k].front());
    if (global < best) best = global;
  }
  return best;
}

size_t ShardedSubCollection::TotalElements() const {
  size_t total = 0;
  for (const SubCollection& shard : shards_) total += shard.TotalElements();
  return total;
}

void ShardedCounter::NotePartition(const ShardedSubCollection& parent,
                                   const ShardedSubCollection& kept,
                                   ShardedSubCollection dropped) {
  if (!delta_enabled_) return;
  if (!chain_.Arm(parent.Fingerprint(), kept.Fingerprint())) {
    // This parent was never counted here (cache hit, fresh session).
    sibling_ = ShardedSubCollection();
    return;
  }
  sibling_ = std::move(dropped);
}

void ShardedCounter::Invalidate() {
  chain_.Invalidate();
  sibling_ = ShardedSubCollection();
}

void ShardedCounter::Release() {
  Invalidate();
  chain_.Release();
  for (EntityCounter& counter : counters_) counter.Release();
  partial_ = {};
  ranges_ = {};
  prev_ = {};
}

void ShardedCounter::CountInformative(const ShardedSubCollection& sub,
                                      std::vector<EntityCount>* out,
                                      const EntityExclusion* excluded,
                                      ThreadPool* pool) {
  out->clear();
  const size_t num_shards = sub.num_shards();
  // Per-shard scratch is sized once and reused across every step of the
  // owning session; EntityCounter clears by touched list internally.
  if (counters_.size() < num_shards) counters_.resize(num_shards);
  if (partial_.size() < num_shards) partial_.resize(num_shards);

  // Pick the counting path. Per-shard passes are always unfiltered CountAll
  // (an entity uninformative within one shard can still split the combined
  // set, and retained counts must survive §6 mask growth); informativeness
  // and the exclusion mask are decided at merge time.
  const uint64_t fp = delta_enabled_ ? sub.Fingerprint() : 0;
  obs::PhaseTimer count_timer(obs::Phase::kCount);
  const CountServe serve =
      delta_enabled_ ? chain_.Classify(fp, excluded) : CountServe::kFull;
  if (serve == CountServe::kReemit) {
    // Same view again (the don't-know loop): the retained counts ARE this
    // view's counts — swap them into the merge input, no counting at all.
    partial_.swap(prev_);
    chain_.CommitReemit();
    NoteShardedServe(obs::ServePath::kReemit);
  } else if (serve == CountServe::kDelta) {
    // Expected child: per shard, dense-count whichever LOCAL half of the
    // partition is smaller — the kept shard view (GatherChild: read the
    // child's counts off the dense array while walking the retained list)
    // or the dropped sibling (SubtractChild) — and derive in place, or
    // rescan the shard when even that loses (answers can skew differently
    // per shard under hash partitioning). Every entity of either half
    // appears in the retained (full, unfiltered) list, so nothing is
    // missed; drop_full stays off because these are CountAll-semantics
    // lists (informativeness is decided at merge time).
    if (prev_.size() < num_shards) prev_.resize(num_shards);
    auto derive_shard = [&](size_t k) {
      const SubCollection& kept_shard = sub.shard(k);
      const SubCollection& sib_shard = sibling_.shard(k);
      const size_t m = prev_[k].size();
      const size_t kept_cost = kept_shard.TotalElements();
      const size_t sib_cost = sib_shard.TotalElements();
      const size_t derive_cost = std::min(kept_cost, sib_cost) + m;
      const size_t full_cost = kept_cost + 2 * std::min(kept_cost, m);
      if (derive_cost < full_cost) {
        counters_[k].CountDense(sib_cost < kept_cost ? sib_shard : kept_shard);
        const std::span<const uint32_t> dense = counters_[k].dense();
        const size_t w =
            sib_cost < kept_cost
                ? kernels::SubtractChild(prev_[k].data(), m, dense.data(),
                                         dense.size(), /*n=*/0,
                                         /*drop_full=*/false, prev_[k].data())
                : kernels::GatherChild(prev_[k].data(), m, dense.data(),
                                       dense.size(), /*n=*/0,
                                       /*drop_full=*/false, prev_[k].data());
        prev_[k].resize(w);
        partial_[k].swap(prev_[k]);
      } else {
        counters_[k].CountAll(kept_shard, &partial_[k]);
      }
    };
    if (pool != nullptr && num_shards > 1 &&
        sub.size() >= kShardParallelMinSets) {
      pool->ParallelFor(num_shards, derive_shard);
    } else {
      for (size_t k = 0; k < num_shards; ++k) derive_shard(k);
    }
    sibling_ = ShardedSubCollection();
    chain_.CommitDelta(fp);
    NoteShardedServe(obs::ServePath::kDelta);
  } else {
    if (delta_enabled_) {
      chain_.ConsumePending(/*broken=*/true);
      sibling_ = ShardedSubCollection();
    }
    auto count_shard = [&](size_t k) {
      counters_[k].CountAll(sub.shard(k), &partial_[k]);
    };
    if (pool != nullptr && num_shards > 1 &&
        sub.size() >= kShardParallelMinSets) {
      pool->ParallelFor(num_shards, count_shard);
    } else {
      for (size_t k = 0; k < num_shards; ++k) count_shard(k);
    }
    // The mask snapshot is intentionally nullptr: per-shard counts are
    // unfiltered, so retention survives any mask change.
    if (delta_enabled_) chain_.CommitFull(fp, /*excluded=*/nullptr);
    NoteShardedServe(obs::ServePath::kFull);
  }

  const uint32_t n = static_cast<uint32_t>(sub.size());
  auto is_excluded = [excluded](EntityId e) {
    return excluded != nullptr && e < excluded->size() && (*excluded)[e];
  };
  if (num_shards == 1) {
    out->reserve(partial_[0].size());
    for (const EntityCount& ec : partial_[0]) {
      if (ec.count != 0 && ec.count != n && !is_excluded(ec.entity)) {
        out->push_back(ec);
      }
    }
    // Retain this pass's counts for the next step's derivation.
    if (delta_enabled_) {
      if (prev_.size() < num_shards) prev_.resize(num_shards);
      partial_.swap(prev_);
    }
    return;
  }

  obs::PhaseTimer merge_timer(obs::Phase::kShardMerge);
  // K-way merge-sum of the ascending per-shard lists; emit the globally
  // informative entities (0 < total < n) in ascending entity order — exactly
  // EntityCounter::CountInformative's output over the merged candidates.
  // The merge parallelizes too: per-shard lists are sorted, so disjoint
  // entity-id ranges merge independently (cursors found by binary search)
  // and concatenate in range order. Only the concatenation stays serial.
  const EntityId universe = sub.collection().base().universe_size();
  size_t num_ranges = 1;
  if (pool != nullptr && sub.size() >= kShardParallelMinSets) {
    num_ranges = std::min<size_t>(
        std::max<size_t>(2 * pool->num_threads(), num_shards), 32);
  }
  if (num_ranges <= 1 || universe < num_ranges) {
    MergeRange(num_shards, n, 0, universe, excluded, out);
  } else {
    if (ranges_.size() < num_ranges) ranges_.resize(num_ranges);
    auto merge_one = [&](size_t r) {
      EntityId lo = static_cast<EntityId>(static_cast<uint64_t>(universe) * r /
                                          num_ranges);
      EntityId hi = static_cast<EntityId>(static_cast<uint64_t>(universe) *
                                          (r + 1) / num_ranges);
      ranges_[r].clear();
      MergeRange(num_shards, n, lo, hi, excluded, &ranges_[r]);
    };
    pool->ParallelFor(num_ranges, merge_one);
    size_t total = 0;
    for (size_t r = 0; r < num_ranges; ++r) total += ranges_[r].size();
    out->reserve(total);
    for (size_t r = 0; r < num_ranges; ++r) {
      out->insert(out->end(), ranges_[r].begin(), ranges_[r].end());
    }
  }
  // Retain this pass's per-shard counts for the next step's derivation.
  if (delta_enabled_) {
    if (prev_.size() < num_shards) prev_.resize(num_shards);
    partial_.swap(prev_);
  }
}

void ShardedCounter::MergeRange(size_t num_shards, uint32_t n, EntityId lo,
                                EntityId hi, const EntityExclusion* excluded,
                                std::vector<EntityCount>* out) const {
  // Raw-pointer cursors, bounded to [lo, hi) up front so the hot loop only
  // compares heads. K is small (kMaxShards-bounded), so the per-emit scan
  // over the cursor array beats heap bookkeeping.
  SETDISC_CHECK(num_shards <= kMaxShards);
  struct Cursor {
    const EntityCount* it;
    const EntityCount* end;
  };
  Cursor cursors[kMaxShards];
  size_t live = 0;
  auto by_entity = [](const EntityCount& ec, EntityId e) {
    return ec.entity < e;
  };
  for (size_t k = 0; k < num_shards; ++k) {
    const EntityCount* begin = partial_[k].data();
    const EntityCount* end = begin + partial_[k].size();
    const EntityCount* it =
        lo == 0 ? begin : std::lower_bound(begin, end, lo, by_entity);
    const EntityCount* stop = std::lower_bound(it, end, hi, by_entity);
    if (it != stop) cursors[live++] = {it, stop};
  }

  while (live > 0) {
    EntityId min_entity = cursors[0].it->entity;
    for (size_t k = 1; k < live; ++k) {
      EntityId entity = cursors[k].it->entity;
      if (entity < min_entity) min_entity = entity;
    }
    uint32_t total = 0;
    for (size_t k = 0; k < live;) {
      if (cursors[k].it->entity == min_entity) {
        total += cursors[k].it->count;
        if (++cursors[k].it == cursors[k].end) {
          // Drop the exhausted cursor: swap-with-last keeps the scan dense.
          cursors[k] = cursors[--live];
          continue;
        }
      }
      ++k;
    }
    if (total != 0 && total != n &&
        !(excluded != nullptr && min_entity < excluded->size() &&
          (*excluded)[min_entity])) {
      out->push_back(EntityCount{min_entity, total});
    }
  }
}

}  // namespace setdisc
