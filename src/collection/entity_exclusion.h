#pragma once

/// \file entity_exclusion.h
/// Per-entity exclusion mask (the §6 "don't know" extension): entities the
/// user could not answer about are excluded from selection.
///
/// Semantically a dynamic bit set indexed by EntityId, with one addition over
/// std::vector<bool>: it maintains a 64-bit fingerprint of the set bits
/// incrementally (O(1) per flip, XOR construction), so the mask can key
/// cross-session selection caches (service/selection_cache.h) without ever
/// being rescanned. An empty mask fingerprints to 0, matching the "no
/// exclusions" (nullptr) case — the two are behaviorally identical to every
/// selector.
///
/// The interface keeps vector<bool>'s spelling (size/resize/operator[]) so
/// existing read and write sites compile unchanged; writes go through a
/// proxy that routes to Set() to keep the fingerprint in sync.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "collection/fingerprint.h"
#include "collection/types.h"

namespace setdisc {

/// Exclusion mask with an incrementally-maintained fingerprint.
class EntityExclusion {
 public:
  EntityExclusion() = default;

  explicit EntityExclusion(size_t n, bool value = false) { resize(n, value); }

  size_t size() const { return bits_.size(); }
  bool empty() const { return bits_.empty(); }

  /// True iff entity `e` is excluded (false when out of range).
  bool Test(EntityId e) const { return e < bits_.size() && bits_[e]; }

  bool operator[](size_t e) const { return bits_[e]; }

  /// Marks entity `e` excluded (value=true) or re-included, growing the mask
  /// as needed, and updates the fingerprint and count iff the bit actually
  /// flips.
  void Set(EntityId e, bool value = true) {
    if (bits_.size() <= e) bits_.resize(e + 1, false);
    if (bits_[e] == static_cast<bool>(value)) return;
    bits_[e] = value;
    fingerprint_ ^= FingerprintBit(e);
    if (value) {
      ++count_;
      ids_.push_back(e);
    } else {
      --count_;
      ids_.erase(std::find(ids_.begin(), ids_.end(), e));  // rare; O(count)
    }
  }

  /// The excluded entity ids, in exclusion order (not sorted), maintained
  /// incrementally. Lets retained counting state snapshot "what was masked
  /// when I was computed" in O(num_excluded) instead of scanning the bits
  /// (delta_counter.h gates its serve paths on that snapshot still being
  /// excluded).
  std::span<const EntityId> excluded_ids() const { return ids_; }

  /// Write proxy so `mask[e] = true` keeps the fingerprint in sync.
  class BitRef {
   public:
    BitRef& operator=(bool value) {
      owner_->Set(entity_, value);
      return *this;
    }
    operator bool() const { return owner_->Test(entity_); }

   private:
    friend class EntityExclusion;
    BitRef(EntityExclusion* owner, EntityId entity)
        : owner_(owner), entity_(entity) {}
    EntityExclusion* owner_;
    EntityId entity_;
  };

  BitRef operator[](size_t e) { return BitRef(this, static_cast<EntityId>(e)); }

  void resize(size_t n, bool value = false) {
    size_t old = bits_.size();
    if (n < old) {
      // Shrink: XOR out the dropped set bits.
      for (size_t e = n; e < old; ++e) {
        if (bits_[e]) {
          fingerprint_ ^= FingerprintBit(e);
          --count_;
          ids_.erase(std::find(ids_.begin(), ids_.end(),
                               static_cast<EntityId>(e)));
        }
      }
    } else if (value) {
      for (size_t e = old; e < n; ++e) {
        fingerprint_ ^= FingerprintBit(e);
        ids_.push_back(static_cast<EntityId>(e));
      }
      count_ += n - old;
    }
    bits_.resize(n, value);
  }

  void clear() {
    bits_.clear();
    ids_.clear();
    fingerprint_ = 0;
    count_ = 0;
  }

  /// Fingerprint of the set of excluded entities. Order-independent (XOR of
  /// per-bit terms), 0 when nothing is excluded, and independent of size():
  /// trailing false bits do not affect it.
  uint64_t Fingerprint() const { return fingerprint_; }

  /// Number of excluded entities, maintained incrementally (O(1)) alongside
  /// the fingerprint. Lets cache admission policies spot singleton masks —
  /// the typical one-shot don't-know state — without scanning the bits.
  size_t num_excluded() const { return count_; }

 private:
  std::vector<bool> bits_;
  std::vector<EntityId> ids_;  // set bits, in exclusion order
  uint64_t fingerprint_ = 0;
  size_t count_ = 0;
};

}  // namespace setdisc
