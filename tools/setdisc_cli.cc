// setdisc_cli — interactive set discovery over a text collection.
//
// Usage:
//   setdisc_cli <collection.txt> [options]
//
// The collection file has one set per line: whitespace-separated entity
// names ('#' starts a comment line). Modes:
//
//   --stats           print collection statistics and per-strategy tree costs
//   --tree            print the decision tree (default strategy: 2-LP)
//   --ask             run an interactive session on stdin: answer y / n / ?
//   --simulate LABEL  run a session against the set labeled/numbered LABEL
//   --serve-stress N  smoke-test the session service: N concurrent simulated
//                     sessions through the SessionManager, report sessions/sec
//
// Options:
//   --k N             lookahead depth for k-LP (default 2)
//   --q N             beam width (k-LPLE); unlimited when omitted
//   --metric ad|h     optimize average (ad) or worst case (h); default ad
//   --examples a,b,c  initial example entities (comma separated)
//   --verify          confirm the discovered set; on "n", backtrack (§6)
//   --threads N       pool size for --serve-stress (default 8)
//   --cache           share one SelectionCache across --serve-stress
//                     sessions; the run reports lookups / hit rate
//   --cache-capacity N  cache entry bound (default 1M; only with --cache)

#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "collection/inverted_index.h"
#include "collection/serialization.h"
#include "core/decision_tree.h"
#include "core/discovery.h"
#include "core/klp.h"
#include "core/selectors.h"
#include "service/discovery_session.h"
#include "service/selection_cache.h"
#include "service/session_manager.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace setdisc;

namespace {

/// Reads one y/n/? answer from stdin (EOF counts as "don't know" so piped
/// input terminates cleanly).
Oracle::Answer ReadAnswer(const std::string& entity_name) {
  for (;;) {
    std::cout << "Is \"" << entity_name << "\" in your set? [y/n/?] "
              << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) return Oracle::Answer::kDontKnow;
    if (line == "y" || line == "Y" || line == "yes") return Oracle::Answer::kYes;
    if (line == "n" || line == "N" || line == "no") return Oracle::Answer::kNo;
    if (line == "?" || line == "dk") return Oracle::Answer::kDontKnow;
    std::cout << "please answer y, n, or ?\n";
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: setdisc_cli <collection.txt> "
               "[--stats|--tree|--ask|--simulate LABEL|--serve-stress N]\n"
               "                   [--k N] [--q N] [--metric ad|h] "
               "[--examples a,b,c] [--verify] [--threads N]\n"
               "                   [--cache] [--cache-capacity N]\n");
  return 2;
}

std::vector<EntityId> ParseExamples(const SetCollection& collection,
                                    const std::string& csv) {
  std::vector<EntityId> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    EntityId e = collection.dict() != nullptr
                     ? collection.dict()->Lookup(token)
                     : kNoEntity;
    if (e == kNoEntity) {
      std::fprintf(stderr, "warning: unknown entity \"%s\" ignored\n",
                   token.c_str());
      continue;
    }
    out.push_back(e);
  }
  return out;
}

SetId ResolveSet(const SetCollection& collection, const std::string& label) {
  for (SetId s = 0; s < collection.num_sets(); ++s) {
    if (collection.label(s) == label) return s;
  }
  // Fall back to a numeric id.
  char* end = nullptr;
  unsigned long v = std::strtoul(label.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && v < collection.num_sets()) {
    return static_cast<SetId>(v);
  }
  return kNoSet;
}

void PrintSession(const SetCollection& collection,
                  const DiscoveryResult& result) {
  for (auto& [entity, answer] : result.transcript) {
    const char* a = answer == Oracle::Answer::kYes ? "yes"
                    : answer == Oracle::Answer::kNo ? "no"
                                                    : "don't know";
    std::cout << "  " << collection.EntityName(entity) << " -> " << a << "\n";
  }
  if (result.found()) {
    SetId s = result.discovered();
    std::cout << "discovered set " << s;
    if (!collection.label(s).empty()) std::cout << " (" << collection.label(s)
                                                << ")";
    std::cout << " in " << result.questions << " questions:\n  {";
    bool first = true;
    for (EntityId e : collection.set(s)) {
      if (!first) std::cout << ", ";
      first = false;
      std::cout << collection.EntityName(e);
    }
    std::cout << "}\n";
  } else {
    std::cout << result.candidates.size()
              << " candidate sets remain after " << result.questions
              << " questions\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string path = argv[1];

  enum class Mode { kStats, kTree, kAsk, kSimulate, kServeStress } mode =
      Mode::kStats;
  std::string simulate_label;
  std::string examples_csv;
  int k = 2;
  int q = -1;
  int stress_sessions = 0;
  int stress_threads = 8;
  bool verify = false;
  bool use_cache = false;
  size_t cache_capacity = size_t{1} << 20;
  CostMetric metric = CostMetric::kAvgDepth;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats") {
      mode = Mode::kStats;
    } else if (arg == "--tree") {
      mode = Mode::kTree;
    } else if (arg == "--ask") {
      mode = Mode::kAsk;
    } else if (arg == "--simulate" && i + 1 < argc) {
      mode = Mode::kSimulate;
      simulate_label = argv[++i];
    } else if (arg == "--serve-stress" && i + 1 < argc) {
      mode = Mode::kServeStress;
      stress_sessions = std::atoi(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      stress_threads = std::atoi(argv[++i]);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--cache") {
      use_cache = true;
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      cache_capacity = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      use_cache = true;
    } else if (arg == "--k" && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (arg == "--q" && i + 1 < argc) {
      q = std::atoi(argv[++i]);
    } else if (arg == "--metric" && i + 1 < argc) {
      std::string m = argv[++i];
      metric = m == "h" ? CostMetric::kHeight : CostMetric::kAvgDepth;
    } else if (arg == "--examples" && i + 1 < argc) {
      examples_csv = argv[++i];
    } else {
      return Usage();
    }
  }

  SetCollection collection;
  Status status = LoadCollectionText(path, &collection);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  std::cout << "loaded " << collection.num_sets() << " unique sets over "
            << collection.num_distinct_entities() << " entities from " << path
            << "\n";
  if (collection.num_sets() == 0) return 0;

  KlpOptions options = q > 0 ? KlpOptions::MakeKlple(k, q, metric)
                             : KlpOptions::MakeKlp(k, metric);
  KlpSelector selector(options);
  SubCollection full = SubCollection::Full(&collection);

  switch (mode) {
    case Mode::kStats: {
      TablePrinter t({"strategy", "avg questions (AD)", "max questions (H)"});
      InfoGainSelector info_gain;
      DecisionTree ig_tree = DecisionTree::Build(full, info_gain);
      t.AddRow({"InfoGain", Format("%.3f", ig_tree.avg_depth()),
                Format("%d", ig_tree.height())});
      DecisionTree klp_tree = DecisionTree::Build(full, selector);
      t.AddRow({std::string(selector.name()),
                Format("%.3f", klp_tree.avg_depth()),
                Format("%d", klp_tree.height())});
      t.Print(std::cout);
      return 0;
    }
    case Mode::kTree: {
      DecisionTree tree = DecisionTree::Build(full, selector);
      std::cout << "strategy " << selector.name() << ", avg depth "
                << Format("%.3f", tree.avg_depth()) << ", height "
                << tree.height() << "\n"
                << tree.ToString(collection, /*max_depth=*/32);
      return 0;
    }
    case Mode::kAsk: {
      // The interactive mode runs on the stepwise session engine — the same
      // shape a network frontend would drive — instead of blocking inside
      // Discover() with a stdin-backed Oracle.
      InvertedIndex index(collection);
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      DiscoveryOptions options;
      options.verify_and_backtrack = verify;
      DiscoverySession session(collection, index, initial, selector, options);
      while (!session.done()) {
        if (session.state() == SessionState::kAwaitingAnswer) {
          EntityId e = session.NextQuestion();
          session.SubmitAnswer(ReadAnswer(collection.EntityName(e)));
        } else {  // kAwaitingVerify
          SetId s = session.PendingVerify();
          bool confirmed = false;
          bool eof = false;
          for (;;) {
            std::cout << "Is set " << s;
            if (!collection.label(s).empty()) {
              std::cout << " (" << collection.label(s) << ")";
            }
            std::cout << " your set? [y/n] " << std::flush;
            std::string line;
            if (!std::getline(std::cin, line)) {
              eof = true;
              break;
            }
            if (line == "y" || line == "Y" || line == "yes") {
              confirmed = true;
              break;
            }
            if (line == "n" || line == "N" || line == "no") break;
            std::cout << "please answer y or n\n";
          }
          if (eof) {
            // No input left to answer the backtracking questions a refutation
            // would trigger — end the conversation here, unconfirmed.
            std::cout << "\n";
            PrintSession(collection, session.result());
            std::cout << "(input ended before confirmation)\n";
            return 1;
          }
          session.Verify(confirmed);
        }
      }
      DiscoveryResult result = session.TakeResult();
      PrintSession(collection, result);
      if (verify && !result.confirmed) {
        // found() can be true here with a set the user just refuted
        // (backtracking exhausted); don't report that as success.
        std::cout << "(no set was confirmed)\n";
        return 1;
      }
      return result.found() ? 0 : 1;
    }
    case Mode::kSimulate: {
      SetId target = ResolveSet(collection, simulate_label);
      if (target == kNoSet) {
        std::fprintf(stderr, "error: unknown set \"%s\"\n",
                     simulate_label.c_str());
        return 1;
      }
      InvertedIndex index(collection);
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      SimulatedOracle oracle(&collection, target);
      DiscoveryOptions discovery_options;
      discovery_options.verify_and_backtrack = verify;
      DiscoveryResult result = Discover(collection, index, initial, selector,
                                        oracle, discovery_options);
      PrintSession(collection, result);
      return result.found() && result.discovered() == target ? 0 : 1;
    }
    case Mode::kServeStress: {
      // Smoke the service layer: N concurrent simulated sessions multiplexed
      // by the SessionManager over this collection, every one expected to
      // converge to its target.
      if (stress_sessions <= 0 || stress_threads <= 0) return Usage();
      InvertedIndex index(collection);
      SessionManagerOptions manager_options;
      manager_options.discovery.verify_and_backtrack = verify;
      manager_options.num_threads = static_cast<size_t>(stress_threads);
      // Capture by value: the factory is stored in the manager and invoked
      // on every Create for its whole lifetime.
      manager_options.selector_factory = [options] {
        return std::make_unique<KlpSelector>(options);
      };
      std::unique_ptr<SelectionCache> cache;
      if (use_cache) {
        SelectionCacheOptions cache_options;
        cache_options.capacity = cache_capacity;
        cache = std::make_unique<SelectionCache>(cache_options);
        manager_options.selection_cache = cache.get();
      }
      SessionManager manager(collection, index, manager_options);
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      // Targets must be discoverable from the initial examples, i.e. among
      // their supersets (all sets when no examples are given).
      std::vector<SetId> eligible = index.SetsContainingAll(initial);
      if (eligible.empty()) {
        std::fprintf(stderr, "error: no set contains all --examples\n");
        return 1;
      }

      WallTimer timer;
      std::vector<std::future<bool>> jobs;
      jobs.reserve(stress_sessions);
      for (int i = 0; i < stress_sessions; ++i) {
        SetId target = eligible[i % eligible.size()];
        jobs.push_back(manager.pool().Submit([&manager, &collection, &initial,
                                              target] {
          SimulatedOracle oracle(&collection, target);
          SessionView view = manager.Drive(manager.Create(initial), oracle);
          manager.Close(view.id);  // finished sessions must not accumulate
          return view.state == SessionState::kFinished &&
                 view.result.found() && view.result.discovered() == target;
        }));
      }
      int failures = 0;
      for (auto& job : jobs) {
        if (!job.get()) ++failures;
      }
      double seconds = timer.Seconds();
      std::cout << "served " << stress_sessions << " sessions on "
                << stress_threads << " threads in " << Format("%.3f", seconds)
                << "s (" << Format("%.1f", stress_sessions / seconds)
                << " sessions/sec), " << failures << " failures\n";
      if (cache != nullptr) {
        SelectionCacheStats stats = cache->stats();
        std::cout << "selection cache: " << stats.lookups << " lookups, "
                  << stats.hits << " hits ("
                  << Format("%.1f", 100.0 * stats.HitRate())
                  << "% hit rate), " << stats.insertions << " insertions, "
                  << stats.evictions << " evictions, " << cache->size()
                  << " entries live\n";
      }
      return failures == 0 ? 0 : 1;
    }
  }
  return 0;
}
