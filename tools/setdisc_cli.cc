// setdisc_cli — interactive set discovery over a text collection.
//
// Usage:
//   setdisc_cli <collection.txt> [options]
//
// The collection file has one set per line: whitespace-separated entity
// names ('#' starts a comment line). Modes:
//
//   --stats           print collection statistics and per-strategy tree costs
//   --tree            print the decision tree (default strategy: 2-LP)
//   --ask             run an interactive session on stdin: answer y / n / ?
//   --simulate LABEL  run a session against the set labeled/numbered LABEL
//   --serve-stress N  smoke-test the session service: N concurrent simulated
//                     sessions through the SessionManager, report sessions/sec
//   --serve PORT      serve the collection over TCP (binary protocol,
//                     net/server.h); runs until SIGINT/SIGTERM, then drains
//   --bind ADDR       numeric address --serve binds (default 127.0.0.1;
//                     use 0.0.0.0 to accept remote clients)
//   --connect HOST:PORT  drive a served collection as a network client:
//                     with --simulate LABEL a scripted session, with --ask
//                     an interactive one, otherwise print server stats
//
// Options:
//   --k N             lookahead depth for k-LP (default 2)
//   --q N             beam width (k-LPLE); unlimited when omitted
//   --shards K        partition the collection into K shards (range scheme);
//                     --ask/--serve/--serve-stress run the sharded engine:
//                     per-step counting fans out per shard and merges, with
//                     transcripts identical to unsharded sessions
//   --metric ad|h     optimize average (ad) or worst case (h); default ad
//   --examples a,b,c  initial example entities (comma separated)
//   --verify          confirm the discovered set; on "n", backtrack (§6)
//   --threads N       pool size for --serve-stress / --serve (default 8)
//   --cache           share one SelectionCache across --serve-stress or
//                     --serve sessions; the run reports lookups / hit rate
//   --cache-capacity N  cache entry bound (default 1M; only with --cache)
//   --cache-skip-one-shot  admission policy: singleton don't-know exclusion
//                     states bypass the cache (reported as "bypasses")
//   --no-delta        disable differential counting (collection/
//                     delta_counter.h): every step recounts from scratch.
//                     Transcripts are identical either way; this is the
//                     baseline knob for A/B timing (bench_counting measures
//                     the gap systematically)
//   --release-idle MS shrink-on-idle for --serve/--serve-stress: sessions
//                     idle longer than MS milliseconds drop their retained
//                     counting state, dense scratch, and k-LP memo (the
//                     next step pays one full recount)
//   --stats-json      at exit, print ONE JSON snapshot of the metrics
//                     registry (latency histograms, serve-path mix, cache
//                     and pruning counters) to stdout; the human-readable
//                     output moves to stderr so stdout stays parseable
//   --metrics-port P  with --serve: also serve Prometheus text exposition
//                     over HTTP on port P (0 = kernel-assigned), same bind
//                     address, no extra thread
//   --max-queue N     admission control for --serve: refuse new
//                     CreateSessions with kBusy (plus a retry-after hint for
//                     clients that understand it) while the pool queue is N
//                     deep or more; re-admits once it drains to N/2
//   --degrade         load-adaptive degradation for --serve/--serve-stress:
//                     under sustained p99 pressure shrink the k-LP lookahead
//                     one step per level (never below a 1-step decision),
//                     re-widening with hysteresis as latency recovers
//   --target-p99 MS   p99 step-latency target (milliseconds) the --degrade
//                     controller steers toward (default 50); implies
//                     --degrade
//   --slow-ms MS      slow-step exemplar threshold for --serve: a step whose
//                     service time (queue wait + execution) reaches MS
//                     milliseconds is captured (trace id, session, phase
//                     breakdown) into the in-process exemplar store — read
//                     it back via Stats — and appended to --event-log when
//                     set. Enables journey tracing. With --degrade and no
//                     --slow-ms, the controller's p99 target is the
//                     threshold
//   --event-log FILE  structured JSONL event log for --serve: one line per
//                     slow-step exemplar. Enables journey tracing
//   --trace-export FILE  with --serve: at shutdown, write every span still
//                     in the journey ring as Chrome trace-event JSON
//                     (chrome://tracing / Perfetto). Enables journey tracing
//   --spill-dir DIR   durability for --serve: journal every session step to
//                     DIR (write-ahead log + checkpoints), evict cold
//                     sessions to it instead of dropping them, and on
//                     restart replay it so clients resume conversations —
//                     including across a kill -9. Also persists the warm
//                     SelectionCache (with --cache) so a restarted server
//                     starts hot. Sessions get auth tokens; resuming needs
//                     the token from the Create reply
//   --checkpoint-interval MS  with --spill-dir: compact the WAL into a fresh
//                     checkpoint (and snapshot the cache) every MS
//                     milliseconds (default 5000)
//   --fsync           with --spill-dir: fsync the WAL on every flush —
//                     survives machine crashes, not just process kills, at a
//                     real per-step cost
//
// While serving, SIGUSR1 dumps the flight recorder (admission flips, effort
// moves, evictions, lifecycle) as Chrome trace JSON next to the event log /
// trace export; fatal signals print its pre-rendered tail to stderr.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collection/inverted_index.h"
#include "collection/serialization.h"
#include "core/decision_tree.h"
#include "core/discovery.h"
#include "core/klp.h"
#include "core/selectors.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/event_log.h"
#include "obs/journey.h"
#include "obs/metrics.h"
#include "obs/registry.h"
#include "service/discovery_session.h"
#include "service/load_controller.h"
#include "service/selection_cache.h"
#include "service/session_manager.h"
#include "service/session_store.h"
#include "util/table_printer.h"
#include "util/timer.h"

using namespace setdisc;

namespace {

/// Reads one y/n/? answer from stdin (EOF counts as "don't know" so piped
/// input terminates cleanly).
Oracle::Answer ReadAnswer(const std::string& entity_name) {
  for (;;) {
    std::cout << "Is \"" << entity_name << "\" in your set? [y/n/?] "
              << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) return Oracle::Answer::kDontKnow;
    if (line == "y" || line == "Y" || line == "yes") return Oracle::Answer::kYes;
    if (line == "n" || line == "N" || line == "no") return Oracle::Answer::kNo;
    if (line == "?" || line == "dk") return Oracle::Answer::kDontKnow;
    std::cout << "please answer y, n, or ?\n";
  }
}

/// Builds the shared cross-session SelectionCache when --cache is on and
/// wires it into `options` — one place for both serving modes
/// (--serve-stress and --serve), so cache flags cannot diverge.
std::unique_ptr<SelectionCache> MakeCacheIfEnabled(
    bool use_cache, size_t capacity, bool skip_one_shot,
    SessionManagerOptions* options) {
  if (!use_cache) return nullptr;
  SelectionCacheOptions cache_options;
  cache_options.capacity = capacity;
  cache_options.skip_singleton_exclusions = skip_one_shot;
  auto cache = std::make_unique<SelectionCache>(cache_options);
  options->selection_cache = cache.get();
  return cache;
}

/// Builds the load-adaptive feedback controller when any of --max-queue /
/// --degrade / --target-p99 is on, wired to the manager's sensors (merged
/// step-latency histogram, live pool queue depth) and actuators (process
/// effort level, idle reaping). Shared by --serve and --serve-stress. The
/// caller Start()s it; nullptr when every load-adaptive flag is off.
std::unique_ptr<LoadController> MakeLoadControllerIfEnabled(
    int max_queue, bool degrade, int target_p99_ms, int release_idle_ms,
    SessionManager* manager) {
  if (max_queue <= 0 && !degrade) return nullptr;
  LoadControllerOptions options;
  options.admit_queue_watermark = static_cast<size_t>(max_queue);
  if (degrade) {
    options.target_p99_ns =
        static_cast<uint64_t>(target_p99_ms) * 1000ull * 1000ull;
  }
  // Under pressure the idle leash doubles as a reaping leash: sessions that
  // would merely shed scratch when healthy give back their table slot too.
  if (release_idle_ms > 0) {
    options.pressure_idle_ttl = std::chrono::milliseconds(release_idle_ms);
  }
  options.metrics = &obs::MetricsRegistry::Default();
  auto controller = std::make_unique<LoadController>(
      options,
      [manager] {
        // Execution time alone is blind to overload (a queued step runs just
        // as fast once it finally runs); fold in the pool queue-wait so the
        // sensed p99 tracks what a client actually feels.
        auto& registry = obs::MetricsRegistry::Default();
        LoadSample sample;
        sample.step_latency =
            registry.MergedHistogram("setdisc_step_latency_ns");
        sample.step_latency.Merge(
            registry.MergedHistogram("setdisc_pool_queue_wait_ns"));
        sample.queue_depth = manager->pool().queue_depth();
        return sample;
      },
      [manager] { return manager->pool().queue_depth(); });
  controller->set_effort_sink(
      [manager](int level) { manager->SetEffortLevel(level); });
  controller->set_idle_reaper([manager](std::chrono::milliseconds leash) {
    return manager->ReapIdle(leash);
  });
  return controller;
}

/// One line of controller accounting for the end-of-run reports.
void PrintLoadReport(const LoadController& controller, std::ostream& out) {
  out << "load control: " << controller.rejected_total() << " rejected, "
      << controller.degrade_total() << " degrades, "
      << controller.recover_total() << " recovers, "
      << controller.pressure_reaped_total()
      << " pressure-reaped, final effort level "
      << controller.effort_level() << "\n";
}

/// Reads the final y/n confirmation for `set` from stdin, shared by the
/// local and remote --ask verify prompts. Returns false on EOF.
bool ReadConfirm(const SetCollection& collection, SetId set, bool* confirmed) {
  for (;;) {
    std::cout << "Is set " << set;
    if (!collection.label(set).empty()) {
      std::cout << " (" << collection.label(set) << ")";
    }
    std::cout << " your set? [y/n] " << std::flush;
    std::string line;
    if (!std::getline(std::cin, line)) return false;
    if (line == "y" || line == "Y" || line == "yes") {
      *confirmed = true;
      return true;
    }
    if (line == "n" || line == "N" || line == "no") {
      *confirmed = false;
      return true;
    }
    std::cout << "please answer y or n\n";
  }
}

int Usage() {
  std::fprintf(stderr,
               "usage: setdisc_cli <collection.txt> "
               "[--stats|--tree|--ask|--simulate LABEL|--serve-stress N|\n"
               "                    --serve PORT|--connect HOST:PORT]\n"
               "                   [--k N] [--q N] [--metric ad|h] "
               "[--shards K] [--examples a,b,c] [--verify] [--threads N]\n"
               "                   [--cache] [--cache-capacity N] "
               "[--cache-skip-one-shot]\n"
               "                   [--no-delta] [--release-idle MS] "
               "[--stats-json] [--metrics-port P]\n"
               "                   [--max-queue N] [--degrade] "
               "[--target-p99 MS]\n"
               "                   [--slow-ms MS] [--event-log FILE] "
               "[--trace-export FILE]\n"
               "                   [--spill-dir DIR] "
               "[--checkpoint-interval MS] [--fsync]\n");
  return 2;
}

/// SIGINT/SIGTERM flip this; the --serve loop watches it and drains.
volatile std::sig_atomic_t g_stop_serving = 0;

void HandleStopSignal(int) { g_stop_serving = 1; }

/// Splits "host:port"; returns false on anything unparsable.
bool ParseHostPort(const std::string& spec, std::string* host, uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
  *host = spec.substr(0, colon);
  char* end = nullptr;
  unsigned long v = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || v == 0 || v > 65535) return false;
  *port = static_cast<uint16_t>(v);
  return true;
}

std::vector<EntityId> ParseExamples(const SetCollection& collection,
                                    const std::string& csv) {
  std::vector<EntityId> out;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.empty()) continue;
    EntityId e = collection.dict() != nullptr
                     ? collection.dict()->Lookup(token)
                     : kNoEntity;
    if (e == kNoEntity) {
      std::fprintf(stderr, "warning: unknown entity \"%s\" ignored\n",
                   token.c_str());
      continue;
    }
    out.push_back(e);
  }
  return out;
}

SetId ResolveSet(const SetCollection& collection, const std::string& label) {
  for (SetId s = 0; s < collection.num_sets(); ++s) {
    if (collection.label(s) == label) return s;
  }
  // Fall back to a numeric id.
  char* end = nullptr;
  unsigned long v = std::strtoul(label.c_str(), &end, 10);
  if (end != nullptr && *end == '\0' && v < collection.num_sets()) {
    return static_cast<SetId>(v);
  }
  return kNoSet;
}

void PrintSession(const SetCollection& collection,
                  const DiscoveryResult& result,
                  std::ostream& out = std::cout) {
  for (auto& [entity, answer] : result.transcript) {
    const char* a = answer == Oracle::Answer::kYes ? "yes"
                    : answer == Oracle::Answer::kNo ? "no"
                                                    : "don't know";
    out << "  " << collection.EntityName(entity) << " -> " << a << "\n";
  }
  if (result.found()) {
    SetId s = result.discovered();
    out << "discovered set " << s;
    if (!collection.label(s).empty()) out << " (" << collection.label(s)
                                          << ")";
    out << " in " << result.questions << " questions:\n  {";
    bool first = true;
    for (EntityId e : collection.set(s)) {
      if (!first) out << ", ";
      first = false;
      out << collection.EntityName(e);
    }
    out << "}\n";
  } else {
    out << result.candidates.size()
        << " candidate sets remain after " << result.questions
        << " questions\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string path = argv[1];

  enum class Mode { kStats, kTree, kAsk, kSimulate, kServeStress, kServe } mode =
      Mode::kStats;
  std::string simulate_label;
  std::string examples_csv;
  std::string connect_spec;
  std::string bind_address = "127.0.0.1";
  int k = 2;
  int q = -1;
  int shards = 1;
  int stress_sessions = 0;
  int stress_threads = 8;
  int serve_port = -1;
  bool verify = false;
  bool no_delta = false;
  int release_idle_ms = 0;
  bool use_cache = false;
  bool cache_skip_one_shot = false;
  bool stats_json = false;
  int metrics_port = -1;
  int max_queue = 0;
  bool degrade = false;
  int target_p99_ms = 50;
  int slow_ms = 0;
  std::string event_log_path;
  std::string trace_export_path;
  std::string spill_dir;
  int checkpoint_interval_ms = 5000;
  bool fsync_wal = false;
  size_t cache_capacity = size_t{1} << 20;
  CostMetric metric = CostMetric::kAvgDepth;

  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--stats") {
      mode = Mode::kStats;
    } else if (arg == "--tree") {
      mode = Mode::kTree;
    } else if (arg == "--ask") {
      mode = Mode::kAsk;
    } else if (arg == "--simulate" && i + 1 < argc) {
      mode = Mode::kSimulate;
      simulate_label = argv[++i];
    } else if (arg == "--serve-stress" && i + 1 < argc) {
      mode = Mode::kServeStress;
      stress_sessions = std::atoi(argv[++i]);
    } else if (arg == "--serve" && i + 1 < argc) {
      mode = Mode::kServe;
      serve_port = std::atoi(argv[++i]);
    } else if (arg == "--bind" && i + 1 < argc) {
      bind_address = argv[++i];
    } else if (arg == "--connect" && i + 1 < argc) {
      connect_spec = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      stress_threads = std::atoi(argv[++i]);
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--cache") {
      use_cache = true;
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      cache_capacity = static_cast<size_t>(std::strtoull(argv[++i], nullptr, 10));
      use_cache = true;
    } else if (arg == "--cache-skip-one-shot") {
      cache_skip_one_shot = true;
      use_cache = true;
    } else if (arg == "--no-delta") {
      no_delta = true;
    } else if (arg == "--release-idle" && i + 1 < argc) {
      release_idle_ms = std::atoi(argv[++i]);
    } else if (arg == "--stats-json") {
      stats_json = true;
    } else if (arg == "--metrics-port" && i + 1 < argc) {
      metrics_port = std::atoi(argv[++i]);
      if (metrics_port < 0 || metrics_port > 65535) return Usage();
    } else if (arg == "--max-queue" && i + 1 < argc) {
      max_queue = std::atoi(argv[++i]);
      if (max_queue < 0) return Usage();
    } else if (arg == "--degrade") {
      degrade = true;
    } else if (arg == "--target-p99" && i + 1 < argc) {
      target_p99_ms = std::atoi(argv[++i]);
      if (target_p99_ms <= 0) return Usage();
      degrade = true;
    } else if (arg == "--slow-ms" && i + 1 < argc) {
      slow_ms = std::atoi(argv[++i]);
      if (slow_ms <= 0) return Usage();
    } else if (arg == "--event-log" && i + 1 < argc) {
      event_log_path = argv[++i];
    } else if (arg == "--trace-export" && i + 1 < argc) {
      trace_export_path = argv[++i];
    } else if (arg == "--spill-dir" && i + 1 < argc) {
      spill_dir = argv[++i];
    } else if (arg == "--checkpoint-interval" && i + 1 < argc) {
      checkpoint_interval_ms = std::atoi(argv[++i]);
      if (checkpoint_interval_ms <= 0) return Usage();
    } else if (arg == "--fsync") {
      fsync_wal = true;
    } else if (arg == "--k" && i + 1 < argc) {
      k = std::atoi(argv[++i]);
    } else if (arg == "--q" && i + 1 < argc) {
      q = std::atoi(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = std::atoi(argv[++i]);
      if (shards < 1) return Usage();
      if (shards > static_cast<int>(kMaxShards)) {
        std::fprintf(stderr, "warning: --shards capped at %zu\n", kMaxShards);
        shards = static_cast<int>(kMaxShards);
      }
    } else if (arg == "--metric" && i + 1 < argc) {
      std::string m = argv[++i];
      metric = m == "h" ? CostMetric::kHeight : CostMetric::kAvgDepth;
    } else if (arg == "--examples" && i + 1 < argc) {
      examples_csv = argv[++i];
    } else {
      return Usage();
    }
  }

  // With --stats-json the human-readable narration moves to stderr and the
  // exit path prints exactly one JSON object (the registry snapshot) to
  // stdout — machine consumers parse stdout, people read stderr.
  std::ostream& hout = stats_json ? static_cast<std::ostream&>(std::cerr)
                                  : std::cout;
  auto finish = [stats_json](int code) {
    if (stats_json) {
      std::cout << obs::MetricsRegistry::Default().Snapshot().ToJson() << "\n"
                << std::flush;
    }
    return code;
  };

  SetCollection collection;
  Status status = LoadCollectionText(path, &collection);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.message().c_str());
    return 1;
  }
  hout << "loaded " << collection.num_sets() << " unique sets over "
       << collection.num_distinct_entities() << " entities from " << path
       << "\n";
  if (collection.num_sets() == 0) return finish(0);

  if (!connect_spec.empty()) {
    // Network client: the same conversations as the local modes, but every
    // step is a round-trip to a `setdisc_cli --serve` process. The local
    // collection file supplies entity names and (for --simulate) the
    // oracle's ground truth; it must match the one the server loaded.
    std::string host;
    uint16_t port = 0;
    if (!ParseHostPort(connect_spec, &host, &port)) return Usage();
    net::DiscoveryClient client;
    Status cs = client.Connect(host, port);
    if (!cs.ok()) {
      std::fprintf(stderr, "error: %s\n", cs.message().c_str());
      return 1;
    }
    std::vector<EntityId> initial = ParseExamples(collection, examples_csv);

    if (mode == Mode::kSimulate) {
      SetId target = ResolveSet(collection, simulate_label);
      if (target == kNoSet) {
        std::fprintf(stderr, "error: unknown set \"%s\"\n",
                     simulate_label.c_str());
        return 1;
      }
      SimulatedOracle oracle(&collection, target);
      net::SessionStateMsg state;
      Status s = net::DriveSession(client, initial, oracle, &state);
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.message().c_str());
        return 1;
      }
      // Best-effort: a session finished at birth was never registered, so
      // the server answers kNotFound — that is fine.
      client.CloseSession(state.session_id);
      DiscoveryResult result = net::ToDiscoveryResult(state.result);
      PrintSession(collection, result);
      return result.found() && result.discovered() == target ? 0 : 1;
    }

    if (mode == Mode::kAsk) {
      // Whether the conversation ends in a verification is the SERVER's
      // configuration (--verify at --serve time), not this client's flag;
      // track what actually happened on the wire for the exit code.
      bool saw_verify = false;
      net::SessionStateMsg state;
      Status s = client.CreateSession(initial, &state);
      while (s.ok() && state.state != SessionState::kFinished) {
        if (state.state == SessionState::kAwaitingAnswer) {
          s = client.Answer(state.session_id,
                            ReadAnswer(collection.EntityName(state.question)),
                            &state);
          continue;
        }
        saw_verify = true;
        bool confirmed = false;
        if (!ReadConfirm(collection, state.verify_set, &confirmed)) {
          client.CloseSession(state.session_id);
          std::cout << "\n(input ended before confirmation)\n";
          return 1;
        }
        s = client.Verify(state.session_id, confirmed, &state);
      }
      if (!s.ok()) {
        std::fprintf(stderr, "error: %s\n", s.message().c_str());
        return 1;
      }
      client.CloseSession(state.session_id);
      DiscoveryResult result = net::ToDiscoveryResult(state.result);
      PrintSession(collection, result);
      if (saw_verify && !result.confirmed) {
        std::cout << "(no set was confirmed)\n";
        return 1;
      }
      return result.found() ? 0 : 1;
    }

    // Default: print the server's counters.
    net::StatsReplyMsg stats;
    Status s = client.GetStats(&stats);
    if (!s.ok()) {
      std::fprintf(stderr, "error: %s\n", s.message().c_str());
      return 1;
    }
    std::cout << "server " << host << ":" << port << ": "
              << stats.active_sessions << " active sessions, "
              << stats.created_sessions << " created, "
              << stats.connections_open << "/" << stats.connections_total
              << " connections open/total, " << stats.frames_received
              << " frames in, " << stats.frames_sent << " out\n";
    return 0;
  }

  KlpOptions options = q > 0 ? KlpOptions::MakeKlple(k, q, metric)
                             : KlpOptions::MakeKlp(k, metric);
  options.enable_delta_counting = !no_delta;
  KlpSelector selector(options);
  SubCollection full = SubCollection::Full(&collection);

  switch (mode) {
    case Mode::kStats: {
      TablePrinter t({"strategy", "avg questions (AD)", "max questions (H)"});
      InfoGainSelector info_gain;
      DecisionTree ig_tree = DecisionTree::Build(full, info_gain);
      t.AddRow({"InfoGain", Format("%.3f", ig_tree.avg_depth()),
                Format("%d", ig_tree.height())});
      DecisionTree klp_tree = DecisionTree::Build(full, selector);
      t.AddRow({std::string(selector.name()),
                Format("%.3f", klp_tree.avg_depth()),
                Format("%d", klp_tree.height())});
      t.Print(std::cout);
      return 0;
    }
    case Mode::kTree: {
      DecisionTree tree = DecisionTree::Build(full, selector);
      std::cout << "strategy " << selector.name() << ", avg depth "
                << Format("%.3f", tree.avg_depth()) << ", height "
                << tree.height() << "\n"
                << tree.ToString(collection, /*max_depth=*/32);
      return 0;
    }
    case Mode::kAsk: {
      // The interactive mode runs on the stepwise session engine — the same
      // shape a network frontend would drive — instead of blocking inside
      // Discover() with a stdin-backed Oracle.
      InvertedIndex index(collection);
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      DiscoveryOptions options;
      options.verify_and_backtrack = verify;
      // Both engines step through the type-erased DiscoveryEngine interface;
      // --shards only changes how the candidate state is stored and counted,
      // never which questions get asked.
      std::unique_ptr<ShardedCollection> sharded;
      std::unique_ptr<ShardedKlpSelector> sharded_selector;
      std::unique_ptr<DiscoveryEngine> session;
      if (shards > 1) {
        sharded = std::make_unique<ShardedCollection>(
            collection,
            ShardingOptions{static_cast<size_t>(shards), ShardScheme::kRange});
        sharded_selector =
            std::make_unique<ShardedKlpSelector>(selector.options());
        session = std::make_unique<ShardedDiscoverySession>(
            *sharded, initial, *sharded_selector, options);
      } else {
        session = std::make_unique<DiscoverySession>(collection, index, initial,
                                                     selector, options);
      }
      while (!session->done()) {
        if (session->state() == SessionState::kAwaitingAnswer) {
          EntityId e = session->NextQuestion();
          session->SubmitAnswer(ReadAnswer(collection.EntityName(e)));
        } else {  // kAwaitingVerify
          bool confirmed = false;
          if (!ReadConfirm(collection, session->PendingVerify(), &confirmed)) {
            // No input left to answer the backtracking questions a refutation
            // would trigger — end the conversation here, unconfirmed.
            std::cout << "\n";
            PrintSession(collection, session->result());
            std::cout << "(input ended before confirmation)\n";
            return 1;
          }
          session->Verify(confirmed);
        }
      }
      DiscoveryResult result = session->TakeResult();
      PrintSession(collection, result);
      if (verify && !result.confirmed) {
        // found() can be true here with a set the user just refuted
        // (backtracking exhausted); don't report that as success.
        std::cout << "(no set was confirmed)\n";
        return 1;
      }
      return result.found() ? 0 : 1;
    }
    case Mode::kSimulate: {
      SetId target = ResolveSet(collection, simulate_label);
      if (target == kNoSet) {
        std::fprintf(stderr, "error: unknown set \"%s\"\n",
                     simulate_label.c_str());
        return 1;
      }
      InvertedIndex index(collection);
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      SimulatedOracle oracle(&collection, target);
      DiscoveryOptions discovery_options;
      discovery_options.verify_and_backtrack = verify;
      DiscoveryResult result = Discover(collection, index, initial, selector,
                                        oracle, discovery_options);
      PrintSession(collection, result, hout);
      return finish(result.found() && result.discovered() == target ? 0 : 1);
    }
    case Mode::kServeStress: {
      // Smoke the service layer: N concurrent simulated sessions multiplexed
      // by the SessionManager over this collection, every one expected to
      // converge to its target.
      if (stress_sessions <= 0 || stress_threads <= 0) return Usage();
      InvertedIndex index(collection);
      SessionManagerOptions manager_options;
      manager_options.discovery.verify_and_backtrack = verify;
      manager_options.num_threads = static_cast<size_t>(stress_threads);
      manager_options.num_shards = static_cast<size_t>(shards);
      // Hook the manager's probe (sessions active/created, manager queue
      // depth) into the process registry so --stats-json and --metrics-port
      // see the whole serving picture, not just the hot-path families.
      manager_options.metrics = &obs::MetricsRegistry::Default();
      if (release_idle_ms > 0) {
        manager_options.release_scratch_after =
            std::chrono::milliseconds(release_idle_ms);
      }
      // Capture by value: the factories are stored in the manager and
      // invoked on every Create for its whole lifetime.
      manager_options.selector_factory = [options] {
        return std::make_unique<KlpSelector>(options);
      };
      manager_options.sharded_selector_factory = [options] {
        return std::make_unique<ShardedKlpSelector>(options);
      };
      std::unique_ptr<SelectionCache> cache = MakeCacheIfEnabled(
          use_cache, cache_capacity, cache_skip_one_shot, &manager_options);
      SessionManager manager(collection, index, manager_options);
      std::unique_ptr<LoadController> controller = MakeLoadControllerIfEnabled(
          /*max_queue=*/0, degrade, target_p99_ms, release_idle_ms, &manager);
      if (controller != nullptr) controller->Start();
      std::vector<EntityId> initial = ParseExamples(collection, examples_csv);
      // Targets must be discoverable from the initial examples, i.e. among
      // their supersets (all sets when no examples are given).
      std::vector<SetId> eligible = index.SetsContainingAll(initial);
      if (eligible.empty()) {
        std::fprintf(stderr, "error: no set contains all --examples\n");
        return 1;
      }

      WallTimer timer;
      std::vector<std::future<bool>> jobs;
      jobs.reserve(stress_sessions);
      for (int i = 0; i < stress_sessions; ++i) {
        SetId target = eligible[i % eligible.size()];
        jobs.push_back(manager.pool().Submit([&manager, &collection, &initial,
                                              target] {
          SimulatedOracle oracle(&collection, target);
          SessionView view = manager.Drive(manager.Create(initial), oracle);
          manager.Close(view.id);  // finished sessions must not accumulate
          return view.state == SessionState::kFinished &&
                 view.result.found() && view.result.discovered() == target;
        }));
      }
      int failures = 0;
      for (auto& job : jobs) {
        if (!job.get()) ++failures;
      }
      double seconds = timer.Seconds();
      hout << "served " << stress_sessions << " sessions on "
           << stress_threads << " threads"
           << (shards > 1 ? Format(" (%d shards)", shards) : "")
           << " in " << Format("%.3f", seconds)
           << "s (" << Format("%.1f", stress_sessions / seconds)
           << " sessions/sec), " << failures << " failures\n";
      if (cache != nullptr) {
        SelectionCacheStats stats = cache->stats();
        hout << "selection cache: " << stats.lookups << " lookups, "
             << stats.hits << " hits ("
             << Format("%.1f", 100.0 * stats.HitRate())
             << "% hit rate), " << stats.insertions << " insertions, "
             << stats.evictions << " evictions, " << stats.bypasses
             << " bypasses, " << cache->size() << " entries live\n";
      }
      if (controller != nullptr) {
        controller->Stop();
        PrintLoadReport(*controller, hout);
      }
      return finish(failures == 0 ? 0 : 1);
    }
    case Mode::kServe: {
      // The network frontend: SessionManager behind a DiscoveryServer,
      // until a SIGINT/SIGTERM asks for a graceful drain.
      if (serve_port < 0 || serve_port > 65535 || stress_threads <= 0) {
        return Usage();
      }
      InvertedIndex index(collection);
      SessionManagerOptions manager_options;
      manager_options.discovery.verify_and_backtrack = verify;
      manager_options.num_threads = static_cast<size_t>(stress_threads);
      manager_options.num_shards = static_cast<size_t>(shards);
      // Hook the manager's probe (sessions active/created, manager queue
      // depth) into the process registry so --stats-json and --metrics-port
      // see the whole serving picture, not just the hot-path families.
      manager_options.metrics = &obs::MetricsRegistry::Default();
      if (release_idle_ms > 0) {
        manager_options.release_scratch_after =
            std::chrono::milliseconds(release_idle_ms);
      }
      manager_options.selector_factory = [options] {
        return std::make_unique<KlpSelector>(options);
      };
      manager_options.sharded_selector_factory = [options] {
        return std::make_unique<ShardedKlpSelector>(options);
      };
      std::unique_ptr<SelectionCache> cache = MakeCacheIfEnabled(
          use_cache, cache_capacity, cache_skip_one_shot, &manager_options);
      // The durable session store — opened (and replayed) before the manager
      // exists so the manager seeds its id counter past every persisted id.
      // Declared before the manager because the manager journals into it for
      // its whole lifetime.
      std::unique_ptr<SessionStore> store;
      const std::string cache_snapshot_path = spill_dir + "/selection_cache.bin";
      if (!spill_dir.empty()) {
        SessionStoreOptions store_options;
        store_options.dir = spill_dir;
        store_options.fsync = fsync_wal;
        store = std::make_unique<SessionStore>(store_options);
        Status open = store->Open(collection.Fingerprint());
        if (!open.ok()) {
          std::fprintf(stderr, "error: cannot open --spill-dir: %s\n",
                       open.message().c_str());
          return 1;
        }
        const SessionStoreStats sstats = store->stats();
        hout << "session store: " << store->size() << " sessions restored from "
             << spill_dir;
        if (sstats.dropped > 0) hout << ", " << sstats.dropped << " dropped";
        if (sstats.torn_bytes > 0) {
          hout << ", " << sstats.torn_bytes << " torn bytes discarded";
        }
        hout << "\n";
        manager_options.session_store = store.get();
        if (cache != nullptr) {
          Result<size_t> warmed = cache->Load(cache_snapshot_path);
          if (warmed.ok() && warmed.value() > 0) {
            hout << "selection cache warm-started with " << warmed.value()
                 << " entries\n";
          }
        }
      }
      SessionManager manager(collection, index, manager_options);
      // Declared before the server so it outlives it: the server consults
      // the controller on every CreateSession until its own shutdown.
      std::unique_ptr<LoadController> controller = MakeLoadControllerIfEnabled(
          max_queue, degrade, target_p99_ms, release_idle_ms, &manager);
      if (controller != nullptr) controller->Start();

      // Any of the journey flags turns request tracing on for this process:
      // every pool job then runs under a JourneyContext and emits request /
      // queue-wait / step / phase spans into the journey ring.
      const bool journey =
          slow_ms > 0 || !event_log_path.empty() || !trace_export_path.empty();
      if (journey) obs::SetJourneyEnabled(true);
      if (!event_log_path.empty() &&
          !obs::EventLog::Global().Open(event_log_path)) {
        std::fprintf(stderr, "error: cannot open --event-log %s\n",
                     event_log_path.c_str());
        return 1;
      }
      // SIGUSR1 dumps land next to whichever journey artifact was asked for.
      const std::string flight_dump_path =
          (!event_log_path.empty()   ? event_log_path
           : !trace_export_path.empty() ? trace_export_path
                                        : std::string("setdisc")) +
          ".flight.json";

      net::ServerOptions server_options;
      server_options.bind_address = bind_address;
      server_options.port = static_cast<uint16_t>(serve_port);
      server_options.load_controller = controller.get();
      if (slow_ms > 0) {
        server_options.slow_step_ns =
            static_cast<uint64_t>(slow_ms) * 1000ull * 1000ull;
      } else if (journey && degrade) {
        // No explicit threshold: steps slower than the controller's own p99
        // target are by definition the ones worth an exemplar.
        server_options.slow_step_ns =
            static_cast<uint64_t>(target_p99_ms) * 1000ull * 1000ull;
      }
      if (metrics_port >= 0) {
        server_options.enable_metrics_http = true;
        server_options.metrics_port = static_cast<uint16_t>(metrics_port);
      }
      net::DiscoveryServer server(manager, server_options);
      Status start = server.Start();
      if (!start.ok()) {
        std::fprintf(stderr, "error: %s\n", start.message().c_str());
        return 1;
      }
      std::signal(SIGINT, HandleStopSignal);
      std::signal(SIGTERM, HandleStopSignal);
      obs::InstallFlightDumpSignalHandler();
      obs::InstallFatalTailHandler();
      hout << "serving on " << server.options().bind_address << ":"
           << server.port() << " (" << selector.name() << ", "
           << stress_threads << " worker threads"
           << (shards > 1 ? Format(", %d shards", shards) : "")
           << (verify ? ", verify" : "")
           << (use_cache ? ", cache" : "");
      if (max_queue > 0) hout << Format(", max-queue %d", max_queue);
      if (degrade) hout << Format(", degrade to p99<=%dms", target_p99_ms);
      hout << ")\n";
      if (server.metrics_port() != 0) {
        hout << "metrics on http://" << server.options().bind_address << ":"
             << server.metrics_port() << "/metrics\n";
      }
      if (journey) {
        hout << "journey tracing on";
        if (server_options.slow_step_ns > 0) {
          hout << Format(", slow-step exemplars >= %llums",
                         static_cast<unsigned long long>(
                             server_options.slow_step_ns / 1000000ull));
        }
        if (!event_log_path.empty()) hout << ", event log " << event_log_path;
        hout << " (SIGUSR1 dumps flight recorder to " << flight_dump_path
             << ")\n";
      }
      hout << std::flush;
      auto next_checkpoint = std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(checkpoint_interval_ms);
      while (g_stop_serving == 0 && server.running()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (store != nullptr &&
            std::chrono::steady_clock::now() >= next_checkpoint) {
          // Periodic compaction bounds both the WAL (replay time after a
          // crash) and the staleness of the warm-cache snapshot. Failures
          // leave the store degraded; the next interval retries and heals.
          (void)store->Checkpoint();
          if (cache != nullptr) (void)cache->Save(cache_snapshot_path);
          next_checkpoint = std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(checkpoint_interval_ms);
        }
        if (obs::ConsumeFlightDumpRequest()) {
          if (obs::WriteFlightDump(flight_dump_path)) {
            hout << "flight recorder dumped to " << flight_dump_path << "\n"
                 << std::flush;
          } else {
            std::fprintf(stderr, "error: cannot write %s\n",
                         flight_dump_path.c_str());
          }
        }
      }
      hout << "draining...\n";
      server.Shutdown();
      if (store != nullptr) {
        // Final compaction AFTER the server stops stepping sessions: the
        // checkpoint then holds every conversation's last state, and the
        // cache snapshot holds the fully warmed working set.
        (void)store->Flush();
        Status ck = store->Checkpoint();
        if (!ck.ok()) {
          std::fprintf(stderr, "warning: final checkpoint failed: %s\n",
                       ck.message().c_str());
        }
        if (cache != nullptr) (void)cache->Save(cache_snapshot_path);
        const SessionStoreStats sstats = store->stats();
        hout << "session store: " << store->size() << " sessions persisted, "
             << sstats.puts << " puts, " << sstats.wal_flushes
             << " WAL flushes, " << sstats.checkpoints << " checkpoints, "
             << sstats.io_errors << " io errors"
             << (store->degraded() ? " (DEGRADED)" : "") << "\n";
      }
      if (controller != nullptr) {
        controller->Stop();
        PrintLoadReport(*controller, hout);
      }
      net::ServerStats stats = server.stats();
      hout << "served " << manager.num_created() << " sessions over "
           << stats.connections_total << " connections ("
           << stats.frames_received << " frames in, " << stats.frames_sent
           << " out, " << stats.protocol_errors << " protocol errors, "
           << stats.idle_closed << " idle-closed)\n";
      if (cache != nullptr) {
        SelectionCacheStats cstats = cache->stats();
        hout << "selection cache: "
             << Format("%.1f", 100.0 * cstats.HitRate()) << "% hit rate, "
             << cstats.bypasses << " bypasses, " << cache->size()
             << " entries\n";
      }
      if (!trace_export_path.empty()) {
        if (obs::WriteJourneyTrace(trace_export_path)) {
          hout << "journey trace (" << obs::Journey().total()
               << " spans total, ring keeps last " << obs::Journey().capacity()
               << ") exported to " << trace_export_path << "\n";
        } else {
          std::fprintf(stderr, "error: cannot write %s\n",
                       trace_export_path.c_str());
        }
      }
      obs::EventLog::Global().Close();
      return finish(0);
    }
  }
  return 0;
}
