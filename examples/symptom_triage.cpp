// The paper's opening scenario: a triage machine narrowing down disease
// cases from symptoms. Diseases are sets of symptoms; the patient types a
// few symptoms (the initial example set I) and the machine asks the most
// informative follow-up questions — including handling "don't know" answers
// (§6).
//
//   $ ./build/examples/symptom_triage

#include <iostream>

#include "collection/inverted_index.h"
#include "core/discovery.h"
#include "core/klp.h"
#include "util/rng.h"

using namespace setdisc;

namespace {

/// A patient who knows their condition and answers symptom questions, but
/// is unsure about some symptoms.
class Patient : public Oracle {
 public:
  Patient(const SetCollection* diseases, SetId condition, double unsure_rate)
      : diseases_(diseases), condition_(condition), unsure_rate_(unsure_rate),
        rng_(99) {}

  Answer AskMembership(EntityId symptom) override {
    if (rng_.Bernoulli(unsure_rate_)) return Answer::kDontKnow;
    return diseases_->Contains(condition_, symptom) ? Answer::kYes
                                                    : Answer::kNo;
  }

 private:
  const SetCollection* diseases_;
  SetId condition_;
  double unsure_rate_;
  Rng rng_;
};

}  // namespace

int main() {
  // A small knowledge base: each disease is the set of its symptoms.
  SetCollectionBuilder builder;
  builder.AddSetNamed({"headache", "nausea", "fatigue", "fever", "chills"},
                      "influenza");
  builder.AddSetNamed({"headache", "nausea", "fatigue", "light-sensitivity",
                       "aura"},
                      "migraine");
  builder.AddSetNamed({"headache", "nausea", "fatigue", "stiff-neck", "fever",
                       "light-sensitivity"},
                      "meningitis");
  builder.AddSetNamed({"headache", "fatigue", "sore-throat", "cough", "fever"},
                      "common-cold");
  builder.AddSetNamed({"nausea", "fatigue", "abdominal-pain", "vomiting"},
                      "gastroenteritis");
  builder.AddSetNamed({"headache", "nausea", "fatigue", "dizziness",
                       "blurred-vision"},
                      "hypertension-crisis");
  builder.AddSetNamed({"fatigue", "fever", "night-sweats", "weight-loss",
                       "cough"},
                      "tuberculosis");
  builder.AddSetNamed({"headache", "nausea", "fatigue", "confusion",
                       "dizziness"},
                      "concussion");
  SetCollection diseases = builder.Build();
  InvertedIndex index(diseases);

  // The patient reports three symptoms...
  std::vector<EntityId> reported = {
      diseases.dict()->Lookup("headache"),
      diseases.dict()->Lookup("nausea"),
      diseases.dict()->Lookup("fatigue"),
  };
  std::cout << "patient reports: headache, nausea, fatigue\n";
  auto candidates = index.SetsContainingAll(reported);
  std::cout << "matching conditions: ";
  for (SetId s : candidates) std::cout << diseases.label(s) << " ";
  std::cout << "\n\n";

  // ... and the machine narrows down with follow-up questions; the patient
  // is unsure ~15% of the time, which the session handles per §6.
  SetId truth = 2;  // meningitis
  Patient patient(&diseases, truth, /*unsure_rate=*/0.15);
  KlpSelector selector(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  DiscoveryResult result =
      Discover(diseases, index, reported, selector, patient);

  for (auto& [symptom, answer] : result.transcript) {
    const char* a = answer == Oracle::Answer::kYes ? "yes"
                    : answer == Oracle::Answer::kNo ? "no"
                                                    : "don't know";
    std::cout << "  Q: do you have \"" << diseases.EntityName(symptom)
              << "\"?  A: " << a << "\n";
  }
  if (result.found()) {
    std::cout << "\ndiagnosis candidate: " << diseases.label(result.discovered())
              << " after " << result.questions << " questions\n";
  } else {
    std::cout << "\nnarrowed to " << result.candidates.size()
              << " conditions (patient was unsure about key symptoms):";
    for (SetId s : result.candidates) std::cout << " " << diseases.label(s);
    std::cout << "\n";
  }
  return 0;
}
