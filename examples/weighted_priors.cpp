// §7 extension demo: set discovery under non-uniform priors. A support
// tool knows from history that some issues are far more common than others;
// a prior-aware decision tree asks about the likely ones first, cutting the
// *expected* number of questions.
//
//   $ ./build/examples/weighted_priors

#include <iostream>

#include "core/decision_tree.h"
#include "core/klp.h"
#include "core/weighted.h"
#include "core/weighted_klp.h"
#include "util/table_printer.h"

using namespace setdisc;

int main() {
  // Troubleshooting knowledge base: each known issue is the set of
  // observable symptoms it causes.
  SetCollectionBuilder builder;
  builder.AddSetNamed({"slow", "timeouts", "high-cpu"}, "gc-thrashing");
  builder.AddSetNamed({"slow", "timeouts", "high-io"}, "disk-saturation");
  builder.AddSetNamed({"slow", "errors-5xx", "restart-loop"}, "oom-kills");
  builder.AddSetNamed({"errors-5xx", "timeouts", "cold-start"},
                      "deploy-regression");
  builder.AddSetNamed({"slow", "high-cpu", "lock-contention"},
                      "hot-partition");
  builder.AddSetNamed({"errors-4xx", "quota-exceeded"}, "rate-limiting");
  builder.AddSetNamed({"slow", "timeouts", "dns-errors"}, "dns-outage");
  builder.AddSetNamed({"errors-5xx", "cert-warnings"}, "expired-cert");
  SetCollection issues = builder.Build();

  // Incident history: deploy regressions and rate limiting dominate.
  std::vector<double> prior = {0.05, 0.08, 0.10, 0.35, 0.04, 0.25, 0.08, 0.05};

  SubCollection all = SubCollection::Full(&issues);
  std::vector<SetId> ids(all.ids().begin(), all.ids().end());
  std::cout << "8 known issues; prior entropy "
            << Format("%.2f", WeightedEntropyLowerBound(prior, ids))
            << " bits (the floor on expected questions)\n\n";

  // Prior-blind tree vs prior-aware tree.
  KlpSelector uniform(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  DecisionTree blind = DecisionTree::Build(all, uniform);

  WeightedKlpOptions wopts;
  wopts.k = 2;
  WeightedKlpSelector weighted(&prior, wopts);
  DecisionTree aware = DecisionTree::Build(all, weighted);

  TablePrinter t({"tree", "expected questions", "worst case"});
  t.AddRow({"prior-blind 2-LP", Format("%.3f", ExpectedQuestions(blind, prior)),
            Format("%d", blind.height())});
  t.AddRow({"prior-aware weighted 2-LP",
            Format("%.3f", ExpectedQuestions(aware, prior)),
            Format("%d", aware.height())});
  t.Print(std::cout);

  std::cout << "\nprior-aware tree (common issues sit near the root):\n"
            << aware.ToString(issues) << "\n";
  std::cout << "depth of deploy-regression (35% of incidents): blind="
            << blind.DepthOf(3) << ", aware=" << aware.DepthOf(3) << "\n";
  return ExpectedQuestions(aware, prior) <=
                 ExpectedQuestions(blind, prior) + 1e-9
             ? 0
             : 1;
}
