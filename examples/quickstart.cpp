// Quickstart: the paper's Fig. 1 collection end to end — build a collection,
// construct an optimal decision tree, and run an interactive discovery
// session with a simulated user.
//
//   $ ./build/examples/quickstart

#include <iostream>

#include "collection/inverted_index.h"
#include "core/decision_tree.h"
#include "core/discovery.h"
#include "core/klp.h"

using namespace setdisc;

int main() {
  // 1. Build a collection of named sets (Fig. 1 of the paper).
  SetCollectionBuilder builder;
  builder.AddSetNamed({"a", "b", "c", "d"}, "S1");
  builder.AddSetNamed({"a", "d", "e"}, "S2");
  builder.AddSetNamed({"a", "b", "c", "d", "f"}, "S3");
  builder.AddSetNamed({"a", "b", "c", "g", "h"}, "S4");
  builder.AddSetNamed({"a", "b", "h", "i"}, "S5");
  builder.AddSetNamed({"a", "b", "j", "k"}, "S6");
  builder.AddSetNamed({"a", "b", "g"}, "S7");
  SetCollection collection = builder.Build();
  std::cout << "collection: " << collection.num_sets() << " sets, "
            << collection.num_distinct_entities() << " entities\n\n";

  // 2. Construct a decision tree with the exact optimal strategy (k-LP with
  //    unbounded lookahead; use KlpOptions::MakeKlp(2, ...) on large data).
  SubCollection full = SubCollection::Full(&collection);
  KlpSelector optimal(KlpOptions::MakeOptimal(CostMetric::kAvgDepth));
  DecisionTree tree = DecisionTree::Build(full, optimal);
  std::cout << "optimal tree (avg depth " << tree.avg_depth() << ", height "
            << tree.height() << ") — the paper's Fig. 2a costs:\n"
            << tree.ToString(collection) << "\n";

  // 3. Run an interactive session: the user is looking for S5 and the
  //    oracle answers membership questions on their behalf.
  InvertedIndex index(collection);
  SetId target = 4;  // S5
  SimulatedOracle oracle(&collection, target);
  KlpSelector selector(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  DiscoveryResult result = Discover(collection, index, {}, selector, oracle);

  std::cout << "searching for " << collection.label(target) << ":\n";
  for (auto& [entity, answer] : result.transcript) {
    std::cout << "  Q: is \"" << collection.EntityName(entity)
              << "\" in your set?  A: "
              << (answer == Oracle::Answer::kYes ? "yes" : "no") << "\n";
  }
  std::cout << "discovered " << collection.label(result.discovered()) << " in "
            << result.questions << " questions\n";
  return result.discovered() == target ? 0 : 1;
}
