// Query discovery on the baseball database (§5.2.3 / §5.3.6): the user has a
// target query in mind, supplies two example output tuples, and the system
// finds the query among ~1000 candidate CNF queries by asking ~10 tuple-
// membership questions.
//
//   $ ./build/examples/query_discovery

#include <iostream>

#include "collection/inverted_index.h"
#include "core/discovery.h"
#include "core/klp.h"
#include "relational/query_sets.h"
#include "util/table_printer.h"

using namespace setdisc;

int main() {
  Table people = GeneratePeople();
  std::cout << "People table: " << people.num_rows() << " players\n";

  // The (hidden) target query: Christmas-born players, T5 of the paper.
  std::vector<TargetQuery> targets = MakeTargetQueries(people);
  const TargetQuery& target = targets[4];
  std::cout << "hidden target query: SELECT * FROM People WHERE "
            << target.query.ToString(people) << "\n";

  QueryDiscoveryInstance inst =
      BuildQueryDiscoveryInstance(people, target.query, 2, /*seed=*/7);
  std::cout << "example tuples given by the user:\n";
  for (EntityId row : inst.examples) {
    std::cout << Format(
        "  %s: born %s %d/%d/%d, height %d, weight %d\n",
        people.StringAt(people.ColumnIndex("playerID"), row).c_str(),
        people.StringAt(people.ColumnIndex("birthCity"), row).c_str(),
        people.IntAt(people.ColumnIndex("birthYear"), row),
        people.IntAt(people.ColumnIndex("birthMonth"), row),
        people.IntAt(people.ColumnIndex("birthDay"), row),
        people.IntAt(people.ColumnIndex("height"), row),
        people.IntAt(people.ColumnIndex("weight"), row));
  }
  std::cout << inst.num_candidate_queries
            << " candidate queries generated from the examples; "
            << inst.num_distinct_outputs << " distinct outputs\n\n";

  InvertedIndex index(inst.collection);
  KlpSelector selector(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  SimulatedOracle oracle(&inst.collection, inst.target_set);
  DiscoveryResult result =
      Discover(inst.collection, index, inst.examples, selector, oracle);

  for (auto& [row, answer] : result.transcript) {
    std::cout << "  Q: should player "
              << people.StringAt(people.ColumnIndex("playerID"), row)
              << " be in the result?  A: "
              << (answer == Oracle::Answer::kYes ? "yes" : "no") << "\n";
  }
  if (!result.found()) {
    std::cout << "discovery failed\n";
    return 1;
  }
  std::cout << "\ndiscovered query after " << result.questions
            << " questions:\n  "
            << inst.representative_query[result.discovered()] << "\n";
  return result.discovered() == inst.target_set ? 0 : 1;
}
