// Web-tables exploration (§5.2.1): generate the simulated corpus, pick a
// 2-entity seed pair (the user's initial examples), and compare strategies
// on the resulting sub-collection — including the §6 multiple-choice
// extension that asks about several example entities per round.
//
//   $ ./build/examples/webtables_explore

#include <iostream>

#include "collection/inverted_index.h"
#include "core/decision_tree.h"
#include "core/discovery.h"
#include "core/klp.h"
#include "core/multi_choice.h"
#include "core/selectors.h"
#include "data/webtables.h"
#include "util/table_printer.h"

using namespace setdisc;

int main() {
  WebTablesConfig cfg;
  cfg.num_sets = 12000;
  cfg.num_domains = 300;
  cfg.seed = 5;
  SetCollection corpus = GenerateWebTables(cfg);
  InvertedIndex index(corpus);
  std::cout << "corpus: " << corpus.num_sets() << " column sets, "
            << corpus.num_distinct_entities() << " distinct entities\n";

  auto subs = ExtractSeedPairSubCollections(corpus, index, /*min_sets=*/100,
                                            /*max_subcollections=*/1,
                                            /*seed=*/9);
  if (subs.empty()) {
    std::cout << "no seed pair found\n";
    return 1;
  }
  const SeedPairEntry& seed = subs[0];
  std::cout << "seed pair (e" << seed.a << ", e" << seed.b << ") matches "
            << seed.set_ids.size() << " candidate sets\n\n";

  SubCollection sub(&corpus, seed.set_ids);
  TablePrinter t({"strategy", "avg questions (AD)", "max questions (H)"});
  for (auto* sel : std::initializer_list<EntitySelector*>{}) (void)sel;

  InfoGainSelector info_gain;
  KlpSelector klp2(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  KlpSelector klple(KlpOptions::MakeKlple(3, 10, CostMetric::kAvgDepth));
  for (EntitySelector* sel : std::initializer_list<EntitySelector*>{
           &info_gain, &klp2, &klple}) {
    DecisionTree tree = DecisionTree::Build(sub, *sel);
    t.AddRow({std::string(sel->name()), Format("%.3f", tree.avg_depth()),
              Format("%d", tree.height())});
  }
  t.Print(std::cout);

  // Single-entity vs multiple-choice interaction for one hidden target.
  SetId target = seed.set_ids[seed.set_ids.size() / 3];
  EntityId initial[] = {seed.a, seed.b};
  KlpSelector session_sel(KlpOptions::MakeKlp(2, CostMetric::kAvgDepth));
  SimulatedOracle oracle(&corpus, target);
  DiscoveryResult single =
      Discover(corpus, index, initial, session_sel, oracle);

  SimulatedOracle oracle2(&corpus, target);
  MultiChoiceOptions mc;
  mc.batch_size = 3;
  MultiChoiceResult multi =
      DiscoverMultiChoice(corpus, index, initial, oracle2, mc);

  std::cout << "\nhidden target set " << target << ":\n"
            << "  single-entity questions: " << single.questions << "\n"
            << "  multiple-choice rounds (3 examples per screen): "
            << multi.rounds << " (" << multi.entities_shown
            << " entities shown)\n";
  return single.found() && multi.found() ? 0 : 1;
}
